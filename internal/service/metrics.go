package service

import "time"

// Metrics is the expvar-style counter snapshot served at /metrics. All
// counts are cumulative for the scheduler's lifetime except the gauges
// (Queued, Running, WaitRetry).
type Metrics struct {
	// Gauges: current queue/pool occupancy.
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	WaitRetry int `json:"wait_retry"`

	// Lifecycle counters.
	Submitted int64 `json:"submitted"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Retried   int64 `json:"retried"`
	Rejected  int64 `json:"rejected"`
	Resumed   int64 `json:"resumed"`

	// QueueLatencyMean is the mean queued→running wait over every attempt
	// started so far (scheduler-clock time).
	QueueLatencyMean time.Duration `json:"queue_latency_mean_ns"`

	// Service-time moments over successful attempts (started→done), the
	// empirical inputs to the /twin capacity model: sample count, mean in
	// seconds, and the second raw moment E[S²] in s².
	ServiceTimeCount int64   `json:"service_time_count"`
	ServiceTimeMeanS float64 `json:"service_time_mean_s,omitempty"`
	ServiceTimeEx2S2 float64 `json:"service_time_ex2_s2,omitempty"`

	// Journal health.
	JournalAppends      int64 `json:"journal_appends"`
	JournalDroppedBytes int   `json:"journal_dropped_bytes"`
	JournalDupTerminals int64 `json:"journal_dup_terminals"`

	// Simulation cache hit-through (from the "sim" backend's cache, when
	// that backend is installed): repeated identical sim jobs land as
	// SimCacheHits instead of recomputing.
	SimCacheHits     int64 `json:"sim_cache_hits"`
	SimCacheDiskHits int64 `json:"sim_cache_disk_hits"`
	SimCacheMisses   int64 `json:"sim_cache_misses"`
}

// ServiceMoments returns the empirical service-time moments over
// successful attempts: sample count, mean seconds, and the squared
// coefficient of variation (clamped at 0 against float cancellation).
// These parameterize twin.MGc for live capacity answers.
func (s *Scheduler) ServiceMoments() (count int64, mean, scv float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.c.svcCount == 0 {
		return 0, 0, 0
	}
	mean = s.c.svcTotalSec / float64(s.c.svcCount)
	ex2 := s.c.svcTotalSqSec / float64(s.c.svcCount)
	if mean > 0 {
		scv = ex2/(mean*mean) - 1
		if scv < 0 {
			scv = 0
		}
	}
	return s.c.svcCount, mean, scv
}

// Metrics snapshots the scheduler counters.
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	m := Metrics{
		Queued:              s.pending.Len(),
		Running:             s.c.running,
		WaitRetry:           s.c.waitRetry,
		Submitted:           s.c.submitted,
		Done:                s.c.done,
		Failed:              s.c.failed,
		Canceled:            s.c.canceled,
		Retried:             s.c.retried,
		Rejected:            s.c.rejected,
		Resumed:             s.c.resumed,
		JournalAppends:      s.c.journalAppends,
		JournalDroppedBytes: s.c.journalDroppedBytes,
		JournalDupTerminals: s.c.journalDupTerminals,
	}
	if s.c.latencyCount > 0 {
		m.QueueLatencyMean = s.c.latencyTotal / time.Duration(s.c.latencyCount)
	}
	m.ServiceTimeCount = s.c.svcCount
	if s.c.svcCount > 0 {
		m.ServiceTimeMeanS = s.c.svcTotalSec / float64(s.c.svcCount)
		m.ServiceTimeEx2S2 = s.c.svcTotalSqSec / float64(s.c.svcCount)
	}
	sim := s.opts.Backends[BackendSim]
	s.mu.Unlock()

	if sb, ok := sim.(*SimBackend); ok {
		st := sb.CacheStats()
		m.SimCacheHits = st.Hits
		m.SimCacheDiskHits = st.DiskHits
		m.SimCacheMisses = st.Misses
	}
	return m
}
