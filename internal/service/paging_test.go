package service

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"github.com/nal-epfl/wehey/internal/clock"
)

// TestJobsPagingEdges pins the /jobs cursor edges the transparent pager
// relies on: an over-cap limit is clamped server-side, a listing whose
// total is an exact multiple of the page size terminates on an empty tail
// page, and a cursor past the end returns an empty page — not an error.
func TestJobsPagingEdges(t *testing.T) {
	b := newStubBackend()
	s, err := NewScheduler(Options{
		Workers:    1,
		QueueLimit: 4 * listLimitMax,
		Clock:      clock.NewManual(time.Unix(1700000000, 0)),
		Backends:   map[string]Backend{"stub": b},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	// Not started: the backlog stays queued; this test is about listing.
	const total = 2 * listLimitMax // exact multiple of the page size
	specs := make([]Spec, listLimitMax)
	for page := 0; page < total/len(specs); page++ {
		for i := range specs {
			specs[i] = stubSpec(int64(page*len(specs) + i))
		}
		if _, err := s.SubmitBatch(specs); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(Handler(s))
	t.Cleanup(srv.Close)
	c := &Client{BaseURL: srv.URL}
	ctx := context.Background()

	// A limit far above the cap is clamped to it, not honored or rejected.
	page, err := c.JobsPage(ctx, "", 10*listLimitMax)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != listLimitMax {
		t.Fatalf("over-cap request returned %d jobs, want the %d cap", len(page), listLimitMax)
	}

	// A cursor at the very last job yields an empty page (the pager's
	// termination probe when total ≡ 0 mod pageSize)...
	lastID := fmt.Sprintf("j%06d", total)
	tail, err := c.JobsPage(ctx, lastID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 0 {
		t.Fatalf("cursor at last job returned %d jobs, want 0", len(tail))
	}
	// ...and so does a cursor past any job that ever existed.
	past, err := c.JobsPage(ctx, fmt.Sprintf("%d", 50*total), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(past) != 0 {
		t.Fatalf("cursor past end returned %d jobs, want 0", len(past))
	}

	// The transparent pager survives the exact-multiple edge: two full
	// pages, then the empty tail terminates it at the right count.
	all, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != total {
		t.Fatalf("listed %d jobs, want %d", len(all), total)
	}
	for i, j := range all {
		if j.Seq != uint64(i+1) {
			t.Fatalf("job %d out of order: seq %d", i, j.Seq)
		}
	}
}

// TestMetricsExposeShardAndJournalCounters asserts the client-visible
// Metrics snapshot — what `wehey-submit metrics` prints — carries the
// shard-scheduler and journal group-commit counters, not just the raw
// /metrics endpoint.
func TestMetricsExposeShardAndJournalCounters(t *testing.T) {
	b := newStubBackend()
	s, err := NewScheduler(Options{
		Workers:     2,
		Shards:      8,
		JournalPath: filepath.Join(t.TempDir(), "journal.wj"),
		Clock:       clock.NewManual(time.Unix(1700000000, 0)),
		Backends:    map[string]Backend{"stub": b},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	s.Start()

	// Two jobs on one server pair: the second must be passed over while
	// the first holds the pair token, ticking the skip counter.
	b.block = make(chan struct{})
	specs := []Spec{stubSpec(1), stubSpec(2)}
	for i := range specs {
		specs[i].ServerPair = "sp1-sp2"
	}
	jobs, err := s.SubmitBatch(specs)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, jobs[0].ID, StateRunning)
	close(b.block)
	for _, j := range jobs {
		waitState(t, s, j.ID, StateDone)
	}

	srv := httptest.NewServer(Handler(s))
	t.Cleanup(srv.Close)
	m, err := (&Client{BaseURL: srv.URL}).Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.SchedulerShards != 8 {
		t.Errorf("SchedulerShards = %d, want 8", m.SchedulerShards)
	}
	if m.ClaimScans == 0 {
		t.Error("ClaimScans = 0 after jobs ran")
	}
	if m.JournalAppends == 0 || m.JournalBatchCommits == 0 {
		t.Errorf("journal counters %d/%d, want both nonzero",
			m.JournalAppends, m.JournalBatchCommits)
	}
	if m.Done != 2 {
		t.Errorf("Done = %d, want 2", m.Done)
	}
}
