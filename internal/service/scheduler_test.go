package service

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/nal-epfl/wehey/internal/clock"
)

// stubBackend is a scriptable backend: it counts runs per job seed (the
// seed identifies a job across restarts), optionally blocks until released
// or canceled, and optionally fails scripted attempts.
type stubBackend struct {
	mu    sync.Mutex
	runs  map[int64]int
	order []int64

	block   chan struct{} // non-nil: Run blocks until close(block) or ctx
	started chan int64    // non-nil: receives the seed when a run begins
	fail    func(seed int64, attempt int) error
}

func newStubBackend() *stubBackend {
	return &stubBackend{runs: map[int64]int{}}
}

func (b *stubBackend) Run(ctx context.Context, spec Spec) (*Result, error) {
	b.mu.Lock()
	b.runs[spec.Seed]++
	attempt := b.runs[spec.Seed]
	b.order = append(b.order, spec.Seed)
	block := b.block
	fail := b.fail
	b.mu.Unlock()
	if b.started != nil {
		b.started <- spec.Seed
	}
	if block != nil {
		select {
		case <-block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if fail != nil {
		if err := fail(spec.Seed, attempt); err != nil {
			return nil, err
		}
	}
	return &Result{Backend: spec.Backend, Detail: "stub"}, nil
}

func (b *stubBackend) runCount(seed int64) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.runs[seed]
}

// newTestScheduler builds a started scheduler over the stub backend with a
// manual clock, registered under the backend name "stub".
func newTestScheduler(t *testing.T, opts Options, b Backend) (*Scheduler, *clock.Manual) {
	t.Helper()
	mc := clock.NewManual(time.Unix(1700000000, 0))
	opts.Clock = mc
	if opts.Backends == nil {
		opts.Backends = map[string]Backend{"stub": b}
	}
	s, err := NewScheduler(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	s.Start()
	return s, mc
}

func stubSpec(seed int64) Spec { return Spec{Backend: "stub", Seed: seed} }

// waitJob polls (real time — test-only) until the job satisfies ok.
func waitJob(t *testing.T, s *Scheduler, id string, ok func(Job) bool) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		job, err := s.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if ok(job) {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (attempt %d)", id, job.State, job.Attempts)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitState polls until the job reaches want.
func waitState(t *testing.T, s *Scheduler, id string, want State) Job {
	t.Helper()
	return waitJob(t, s, id, func(j Job) bool { return j.State == want })
}

func TestSubmitRunsToDone(t *testing.T) {
	b := newStubBackend()
	s, _ := newTestScheduler(t, Options{Workers: 2}, b)
	job, err := s.Submit(stubSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, s, job.ID, StateDone)
	if got.Result == nil || got.Result.Detail != "stub" {
		t.Errorf("result = %+v, want stub detail", got.Result)
	}
	if got.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", got.Attempts)
	}
	if b.runCount(7) != 1 {
		t.Errorf("runs = %d, want 1", b.runCount(7))
	}
}

func TestBackoffScheduleIsDeterministic(t *testing.T) {
	b := newStubBackend()
	b.fail = func(int64, int) error { return errors.New("boom") }
	retry := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Second, MaxDelay: time.Minute, JitterFrac: 0.5}
	s, mc := newTestScheduler(t, Options{Workers: 1, Retry: retry}, b)

	job, err := s.Submit(stubSpec(42))
	if err != nil {
		t.Fatal(err)
	}

	// Replicate the job's jitter stream: same ID, same spec seed.
	rng := rand.New(rand.NewSource(jobSeed(job.ID, 42)))
	want1 := retry.delay(1, rng)
	want2 := retry.delay(2, rng)

	got := waitJob(t, s, job.ID, func(j Job) bool {
		return j.State == StateWaitRetry && j.Attempts == 1
	})
	if d := got.RetryAt.Sub(mc.Now()); d != want1 {
		t.Errorf("first backoff = %v, want %v", d, want1)
	}
	mc.Advance(want1)
	got = waitJob(t, s, job.ID, func(j Job) bool { // second failure
		return j.State == StateWaitRetry && j.Attempts == 2
	})
	if d := got.RetryAt.Sub(mc.Now()); d != want2 {
		t.Errorf("second backoff = %v, want %v", d, want2)
	}
	mc.Advance(want2)
	got = waitState(t, s, job.ID, StateFailed) // third failure exhausts attempts
	if got.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", got.Attempts)
	}
	if got.Error == "" {
		t.Error("failed job has no error")
	}
	if b.runCount(42) != 3 {
		t.Errorf("runs = %d, want 3", b.runCount(42))
	}
}

func TestDeadlineCancelsAttempt(t *testing.T) {
	b := newStubBackend()
	b.block = make(chan struct{}) // never released: only the deadline ends it
	b.started = make(chan int64, 4)
	s, mc := newTestScheduler(t, Options{Workers: 1}, b)

	spec := stubSpec(5)
	spec.Deadline = time.Minute
	spec.MaxAttempts = 1
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-b.started // the attempt is executing; its deadline timer exists
	mc.Advance(time.Minute)
	got := waitState(t, s, job.ID, StateFailed)
	if !contains(got.Error, "deadline") {
		t.Errorf("error = %q, want a deadline error", got.Error)
	}
}

func TestPriorityOrdersQueue(t *testing.T) {
	b := newStubBackend()
	b.block = make(chan struct{})
	b.started = make(chan int64, 8)
	s, _ := newTestScheduler(t, Options{Workers: 1}, b)

	blocker, err := s.Submit(stubSpec(100))
	if err != nil {
		t.Fatal(err)
	}
	<-b.started // the single worker is now occupied

	low := stubSpec(1)
	high := stubSpec(2)
	high.Priority = 5
	jLow, err := s.Submit(low)
	if err != nil {
		t.Fatal(err)
	}
	jHigh, err := s.Submit(high)
	if err != nil {
		t.Fatal(err)
	}
	close(b.block)
	waitState(t, s, blocker.ID, StateDone)
	waitState(t, s, jHigh.ID, StateDone)
	waitState(t, s, jLow.ID, StateDone)

	b.mu.Lock()
	order := append([]int64(nil), b.order...)
	b.mu.Unlock()
	want := []int64{100, 2, 1}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestServerPairTokenSerializes(t *testing.T) {
	b := newStubBackend()
	b.block = make(chan struct{})
	b.started = make(chan int64, 8)
	s, _ := newTestScheduler(t, Options{Workers: 4}, b)

	first := stubSpec(1)
	first.ServerPair = "pairX"
	second := stubSpec(2)
	second.ServerPair = "pairX"
	other := stubSpec(3)
	other.ServerPair = "pairY"

	j1, err := s.Submit(first)
	if err != nil {
		t.Fatal(err)
	}
	<-b.started
	j2, err := s.Submit(second)
	if err != nil {
		t.Fatal(err)
	}
	j3, err := s.Submit(other)
	if err != nil {
		t.Fatal(err)
	}
	// pairY is free: job 3 starts despite being behind job 2 in the queue.
	if seed := <-b.started; seed != 3 {
		t.Fatalf("started seed %d, want 3 (pairY)", seed)
	}
	// pairX is held by job 1: job 2 must still be queued.
	if got, _ := s.Get(j2.ID); got.State != StateQueued {
		t.Fatalf("job sharing a busy pair is %s, want queued", got.State)
	}
	close(b.block)
	waitState(t, s, j1.ID, StateDone)
	waitState(t, s, j2.ID, StateDone)
	waitState(t, s, j3.ID, StateDone)
}

func TestAdmissionControlRejects(t *testing.T) {
	b := newStubBackend()
	b.block = make(chan struct{})
	b.started = make(chan int64, 4)
	defer close(b.block)
	s, _ := newTestScheduler(t, Options{Workers: 1, QueueLimit: 1}, b)

	if _, err := s.Submit(stubSpec(1)); err != nil { // runs
		t.Fatal(err)
	}
	<-b.started
	if _, err := s.Submit(stubSpec(2)); err != nil { // fills the queue
		t.Fatal(err)
	}
	if _, err := s.Submit(stubSpec(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if m := s.Metrics(); m.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", m.Rejected)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	b := newStubBackend()
	b.block = make(chan struct{})
	b.started = make(chan int64, 4)
	s, _ := newTestScheduler(t, Options{Workers: 1}, b)

	running, err := s.Submit(stubSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	<-b.started
	queued, err := s.Submit(stubSpec(2))
	if err != nil {
		t.Fatal(err)
	}

	if got, err := s.Cancel(queued.ID); err != nil || got.State != StateCanceled {
		t.Fatalf("cancel queued: job %v err %v, want canceled", got.State, err)
	}
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	got := waitState(t, s, running.ID, StateCanceled)
	if got.Attempts != 1 {
		t.Errorf("canceled running job attempts = %d, want 1", got.Attempts)
	}
	if b.runCount(2) != 0 {
		t.Errorf("canceled queued job ran %d times", b.runCount(2))
	}
	if _, err := s.Cancel("j999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel unknown: %v, want ErrNotFound", err)
	}
}

func TestCancelWaitRetry(t *testing.T) {
	b := newStubBackend()
	b.fail = func(int64, int) error { return errors.New("boom") }
	s, _ := newTestScheduler(t, Options{Workers: 1}, b)

	job, err := s.Submit(stubSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, job.ID, StateWaitRetry)
	if got, err := s.Cancel(job.ID); err != nil || got.State != StateCanceled {
		t.Fatalf("cancel wait-retry: job %v err %v, want canceled", got.State, err)
	}
	if b.runCount(9) != 1 {
		t.Errorf("runs after cancel = %d, want 1", b.runCount(9))
	}
}

func TestSubmitValidation(t *testing.T) {
	b := newStubBackend()
	s, _ := newTestScheduler(t, Options{}, b)
	if _, err := s.Submit(Spec{}); err == nil {
		t.Error("empty spec admitted")
	}
	if _, err := s.Submit(Spec{Backend: BackendSim}); err == nil {
		t.Error("sim spec without payload admitted")
	}
	if _, err := s.Submit(Spec{Backend: "no-such-backend"}); err == nil {
		t.Error("unknown backend admitted")
	}
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get unknown = %v, want ErrNotFound", err)
	}
}

func TestCloseRejectsSubmit(t *testing.T) {
	b := newStubBackend()
	s, _ := newTestScheduler(t, Options{}, b)
	s.Close()
	if _, err := s.Submit(stubSpec(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestBackendPanicBecomesFailure(t *testing.T) {
	b := newStubBackend()
	b.fail = func(int64, int) error { panic("kaboom") }
	s, _ := newTestScheduler(t, Options{Workers: 1, Retry: RetryPolicy{MaxAttempts: 1}}, b)
	job, err := s.Submit(stubSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, s, job.ID, StateFailed)
	if !contains(got.Error, "panic") {
		t.Errorf("error = %q, want a panic report", got.Error)
	}
	// The worker survived: the next job still runs.
	b.mu.Lock()
	b.fail = nil
	b.mu.Unlock()
	job2, err := s.Submit(stubSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, job2.ID, StateDone)
}

func TestMetricsCounters(t *testing.T) {
	b := newStubBackend()
	s, _ := newTestScheduler(t, Options{Workers: 1}, b)
	j1, _ := s.Submit(stubSpec(1))
	j2, _ := s.Submit(stubSpec(2))
	waitState(t, s, j1.ID, StateDone)
	waitState(t, s, j2.ID, StateDone)
	m := s.Metrics()
	if m.Submitted != 2 || m.Done != 2 || m.Running != 0 || m.Queued != 0 {
		t.Errorf("metrics = %+v, want submitted=2 done=2 idle", m)
	}
	jobs := s.List()
	if len(jobs) != 2 || jobs[0].Seq > jobs[1].Seq {
		t.Errorf("List() = %+v, want 2 jobs in seq order", jobs)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
