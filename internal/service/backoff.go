package service

import (
	"hash/fnv"
	"math/rand"
	"time"
)

// RetryPolicy shapes the retry schedule: capped exponential backoff with
// deterministic seeded jitter. The zero value means "use the defaults".
type RetryPolicy struct {
	// MaxAttempts caps total executions including the first (default 3).
	MaxAttempts int
	// BaseDelay is the wait after the first failure (default 500 ms).
	BaseDelay time.Duration
	// MaxDelay caps the delay — exponential growth and jitter included
	// (default 30 s). No schedule ever waits longer than this.
	MaxDelay time.Duration
	// JitterFrac spreads each delay uniformly over
	// [1-JitterFrac, 1+JitterFrac) (default 0.5). Zero jitter is
	// expressed with a negative value; 0 means "default".
	JitterFrac float64
}

// fill resolves defaults into concrete values.
func (p RetryPolicy) fill() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 500 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 30 * time.Second
	}
	//lint:ignore floateq exact sentinel: 0 is the literal unset default
	if p.JitterFrac == 0 {
		p.JitterFrac = 0.5
	} else if p.JitterFrac < 0 {
		p.JitterFrac = 0
	}
	return p
}

// delay returns the backoff before attempt+1, where attempt counts the
// executions that have already failed (1 after the first failure). The
// jitter multiplier is drawn from rng — the job's seeded generator — so a
// re-submitted campaign reproduces its retry schedule exactly.
func (p RetryPolicy) delay(attempt int, rng *rand.Rand) time.Duration {
	p = p.fill()
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.JitterFrac > 0 {
		lo := 1 - p.JitterFrac
		d = time.Duration(float64(d) * (lo + 2*p.JitterFrac*rng.Float64()))
	}
	// MaxDelay is a hard cap: clamp again after jitter, or a delay already
	// at the cap jitters up to (1+JitterFrac)×MaxDelay. The rng draw above
	// is unconditional either way, so seeded retry schedules that stayed
	// below the cap are unchanged.
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// jobSeed derives the per-job generator seed from the spec seed and the
// job ID, so two jobs sharing a spec seed still jitter independently while
// staying reproducible across restarts (IDs are stable: they encode the
// journal sequence number).
func jobSeed(id string, specSeed int64) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return specSeed ^ int64(h.Sum64())
}
