package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// newHTTPFixture starts a scheduler (stub + real sim backends) behind an
// httptest server and returns a client for it.
func newHTTPFixture(t *testing.T) (*Client, *Scheduler) {
	t.Helper()
	s, err := NewScheduler(Options{
		Workers: 2,
		Backends: map[string]Backend{
			"stub":     newStubBackend(),
			BackendSim: NewSimBackend(nil),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	s.Start()
	srv := httptest.NewServer(Handler(s))
	t.Cleanup(srv.Close)
	return &Client{BaseURL: srv.URL, HTTPClient: srv.Client()}, s
}

func TestHTTPLifecycle(t *testing.T) {
	c, _ := newHTTPFixture(t)
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	job, err := c.Submit(ctx, stubSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.State == "" {
		t.Fatalf("submit returned %+v", job)
	}
	done, err := c.Await(ctx, job.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("state = %s, want done", done.State)
	}

	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != job.ID {
		t.Errorf("jobs = %+v, want the one submitted job", jobs)
	}

	if _, err := c.Job(ctx, "j999999"); err == nil {
		t.Error("fetching an unknown job succeeded")
	}
	if _, err := c.Submit(ctx, Spec{}); err == nil {
		t.Error("submitting an invalid spec succeeded")
	}

	// Cancel is idempotent on terminal jobs: it reports the final state.
	got, err := c.Cancel(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone {
		t.Errorf("cancel of done job = %s, want done", got.State)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Done != 1 || m.Submitted != 1 {
		t.Errorf("metrics = %+v, want done=1 submitted=1", m)
	}
}

func TestHTTPMethodRouting(t *testing.T) {
	c, _ := newHTTPFixture(t)
	resp, err := c.httpClient().Post(c.BaseURL+"/healthz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz = %d, want 405", resp.StatusCode)
	}
}

// TestHTTPSimJobsHitCache proves the cache hit-through satellite end to
// end: two identical sim jobs over the admin plane compute one simulation,
// and /metrics shows the second landing as a cache hit.
func TestHTTPSimJobsHitCache(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two (deduped to one) netsim trials")
	}
	c, _ := newHTTPFixture(t)
	ctx := context.Background()

	spec := Spec{
		Backend: BackendSim,
		Seed:    11,
		Sim:     &SimJob{Duration: 500 * time.Millisecond},
	}
	for i := 0; i < 2; i++ {
		job, err := c.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		done, err := c.Await(ctx, job.ID, 10*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if done.State != StateDone {
			t.Fatalf("sim job %d = %s (%s), want done", i, done.State, done.Error)
		}
		if done.Result == nil || done.Result.Backend != BackendSim {
			t.Fatalf("sim job %d result = %+v", i, done.Result)
		}
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.SimCacheMisses != 1 || m.SimCacheHits != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1 (identical specs dedup)",
			m.SimCacheHits, m.SimCacheMisses)
	}
	if m.Done != 2 {
		t.Errorf("done = %d, want 2", m.Done)
	}
}

func TestClientAwaitHonorsContext(t *testing.T) {
	b := newStubBackend()
	b.block = make(chan struct{})
	defer close(b.block)
	s, err := NewScheduler(Options{Workers: 1, Backends: map[string]Backend{"stub": b}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	s.Start()
	srv := httptest.NewServer(Handler(s))
	t.Cleanup(srv.Close)
	c := &Client{BaseURL: srv.URL, HTTPClient: srv.Client()}

	job, err := c.Submit(context.Background(), stubSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := c.Await(ctx, job.ID, 5*time.Millisecond); err == nil {
		t.Error("Await returned nil for a never-finishing job with an expiring context")
	}
}

func getTwin(t *testing.T, c *Client, query string) (int, TwinAnswer) {
	t.Helper()
	resp, err := c.HTTPClient.Get(c.BaseURL + "/twin?" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ans TwinAnswer
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ans); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, ans
}

func TestTwinEndpointNeedsMomentsOrOverride(t *testing.T) {
	c, _ := newHTTPFixture(t)
	// No completed jobs and no override: the model has no service-time
	// moments to run on.
	if code, _ := getTwin(t, c, "rate=0.5"); code != http.StatusUnprocessableEntity {
		t.Errorf("no-moments status = %d, want 422", code)
	}
	// Bad parameters are 400s.
	for _, q := range []string{"rate=abc", "rate=-1", "rate=1&mean=0", "rate=1&scv=1", "rate=1&mean=2&workers=0", "rate=1&mean=2&p95=0"} {
		if code, _ := getTwin(t, c, q); code != http.StatusBadRequest {
			t.Errorf("query %q: status = %d, want 400", q, code)
		}
	}
}

func TestTwinEndpointOverridesAndSizing(t *testing.T) {
	c, _ := newHTTPFixture(t)
	code, ans := getTwin(t, c, "rate=0.5&mean=2&scv=1&p95=20")
	if code != http.StatusOK {
		t.Fatalf("status = %d, want 200", code)
	}
	// Fixture pool is 2 workers: ρ = 0.5·2/2 = 0.5, comfortably stable.
	if ans.MomentSource != "override" || ans.Workers != 2 || !ans.Stable {
		t.Errorf("answer = %+v, want stable override on 2 workers", ans)
	}
	if ans.Utilization != 0.5 {
		t.Errorf("utilization = %v, want 0.5", ans.Utilization)
	}
	if !(ans.P95SojournS > ans.MeanSojournS && ans.MeanSojournS > ans.MeanServiceS) {
		t.Errorf("sojourn ordering violated: %+v", ans)
	}
	if ans.MinWorkers < 1 {
		t.Errorf("min workers = %d, want a feasible pool for a 20 s p95", ans.MinWorkers)
	}

	// Overload on one worker: unstable, sojourn fields suppressed.
	code, ans = getTwin(t, c, "rate=5&mean=2&workers=1")
	if code != http.StatusOK || ans.Stable || ans.MeanSojournS != 0 {
		t.Errorf("overloaded answer = %+v (status %d), want unstable with no sojourns", ans, code)
	}
}

func TestTwinEndpointUsesMeasuredMoments(t *testing.T) {
	c, s := newHTTPFixture(t)
	ctx := context.Background()
	job, err := c.Submit(ctx, stubSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Await(ctx, job.ID, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	count, _, _ := s.ServiceMoments()
	if count != 1 {
		t.Fatalf("service moments count = %d, want 1", count)
	}
	code, ans := getTwin(t, c, "rate=0.0001")
	if code != http.StatusOK {
		t.Fatalf("status = %d, want 200 with measured moments", code)
	}
	if ans.MomentSource != "measured" || ans.SampleCount != 1 {
		t.Errorf("answer = %+v, want measured moments from 1 sample", ans)
	}
	if m := s.Metrics(); m.ServiceTimeCount != 1 {
		t.Errorf("metrics service_time_count = %d, want 1", m.ServiceTimeCount)
	}
}
