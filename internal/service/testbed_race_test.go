package service

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// pairGuardBackend wraps a backend and independently verifies the
// scheduler's server-pair tokens: it fails the moment two concurrent runs
// share a pair. The check is deliberately outside the scheduler (it
// re-derives occupancy from the Run calls themselves), so the test catches
// token bookkeeping bugs rather than restating them.
type pairGuardBackend struct {
	inner Backend

	mu         sync.Mutex
	active     map[string]int
	violations []string
	maxActive  int
}

func (b *pairGuardBackend) Run(ctx context.Context, spec Spec) (*Result, error) {
	if pair := spec.ServerPair; pair != "" {
		b.mu.Lock()
		b.active[pair]++
		if b.active[pair] > 1 {
			b.violations = append(b.violations,
				fmt.Sprintf("pair %s shared by %d concurrent jobs", pair, b.active[pair]))
		}
		total := 0
		for _, n := range b.active {
			total += n
		}
		if total > b.maxActive {
			b.maxActive = total
		}
		b.mu.Unlock()
		defer func() {
			b.mu.Lock()
			b.active[pair]--
			b.mu.Unlock()
		}()
	}
	return b.inner.Run(ctx, spec)
}

// TestTestbedPairExclusivityUnderRace floods the scheduler with real
// loopback-testbed localization sessions — many concurrent UDP replays
// through in-process middleboxes — across a handful of server pairs, and
// asserts that no two jobs ever shared a pair. Run under -race this also
// exercises the middlebox, transport, and scheduler concurrency together.
func TestTestbedPairExclusivityUnderRace(t *testing.T) {
	if testing.Short() {
		t.Skip("seconds of real-socket replays")
	}
	guard := &pairGuardBackend{inner: &TestbedBackend{}, active: map[string]int{}}
	s, err := NewScheduler(Options{
		Workers:  6,
		Retry:    RetryPolicy{MaxAttempts: 1},
		Backends: map[string]Backend{BackendTestbed: guard},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	s.Start()

	pairs := []string{"pairA", "pairB", "pairC"}
	const jobsPerPair = 3
	var ids []string
	for i := 0; i < jobsPerPair; i++ {
		for _, pair := range pairs {
			job, err := s.Submit(Spec{
				Backend:    BackendTestbed,
				ServerPair: pair,
				Seed:       int64(len(ids) + 1),
				Testbed:    &TestbedJob{Duration: 150 * time.Millisecond},
			})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, job.ID)
		}
	}
	for _, id := range ids {
		got := waitJob(t, s, id, func(j Job) bool { return j.State.Terminal() })
		if got.State != StateDone {
			t.Errorf("job %s = %s (%s), want done", id, got.State, got.Error)
		}
	}

	guard.mu.Lock()
	defer guard.mu.Unlock()
	for _, v := range guard.violations {
		t.Error(v)
	}
	// Sanity: the pairs really did run concurrently with each other —
	// otherwise the exclusivity assertion would be vacuous.
	if guard.maxActive < 2 {
		t.Errorf("max concurrent pairs = %d; expected cross-pair parallelism", guard.maxActive)
	}
}
