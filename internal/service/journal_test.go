package service

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/nal-epfl/wehey/internal/clock"
)

// writeJournal hand-builds a journal file from records, simulating the
// state a killed process leaves behind (OpenJournal + Append + no Close is
// exactly a SIGKILL: every record was fsynced, nothing else exists).
func writeJournal(t *testing.T, path string, records ...record) {
	t.Helper()
	jr, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := jr.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
}

func submitRecord(id string, seq uint64, seed int64) record {
	spec := stubSpec(seed)
	return record{Op: recSubmit, ID: id, Seq: seq, Spec: &spec}
}

// journalScheduler opens a scheduler over the journal with the stub
// backend and a manual clock, NOT started (tests inspect recovery first).
func journalScheduler(t *testing.T, path string, b Backend) *Scheduler {
	t.Helper()
	s, err := NewScheduler(Options{
		Workers:     2,
		Clock:       clock.NewManual(time.Unix(1700000000, 0)),
		JournalPath: path,
		Backends:    map[string]Backend{"stub": b},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestJournalResumeAfterKill(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j", "journal.wj")
	// The dead process submitted three jobs and completed the first.
	writeJournal(t, path,
		submitRecord("j000001", 1, 1),
		submitRecord("j000002", 2, 2),
		submitRecord("j000003", 3, 3),
		record{Op: recDone, ID: "j000001", Result: &Result{Backend: "stub", Detail: "old"}},
	)

	b := newStubBackend()
	s := journalScheduler(t, path, b)
	// Recovery state before any execution.
	if got, _ := s.Get("j000001"); got.State != StateDone || got.Result == nil || got.Result.Detail != "old" {
		t.Fatalf("completed job not recovered: %+v", got)
	}
	for _, id := range []string{"j000002", "j000003"} {
		if got, _ := s.Get(id); got.State != StateQueued || !got.Resumed {
			t.Fatalf("job %s = %s resumed=%v, want queued resumed", id, got.State, got.Resumed)
		}
	}

	s.Start()
	waitState(t, s, "j000002", StateDone)
	waitState(t, s, "j000003", StateDone)
	// The completed job must not have run again; the others exactly once.
	if n := b.runCount(1); n != 0 {
		t.Errorf("done job re-ran %d times", n)
	}
	for seed := int64(2); seed <= 3; seed++ {
		if n := b.runCount(seed); n != 1 {
			t.Errorf("resumed job seed=%d ran %d times, want 1", seed, n)
		}
	}
	// New submissions continue the sequence, not reuse recovered IDs.
	job, err := s.Submit(stubSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if job.Seq != 4 || job.ID != "j000004" {
		t.Errorf("post-recovery submission = %s seq %d, want j000004 seq 4", job.ID, job.Seq)
	}
	if m := s.Metrics(); m.Resumed != 2 {
		t.Errorf("resumed = %d, want 2", m.Resumed)
	}
}

func TestJournalLiveRestartCycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wj")
	b := newStubBackend()
	b.block = make(chan struct{}) // jobs hang: Close interrupts them
	b.started = make(chan int64, 8)

	s1 := journalScheduler(t, path, b)
	s1.Start()
	if _, err := s1.Submit(stubSpec(1)); err != nil {
		t.Fatal(err)
	}
	<-b.started
	if _, err := s1.Submit(stubSpec(2)); err != nil {
		t.Fatal(err)
	}
	s1.Close() // interrupts the running attempt; nothing completed

	// Second process: jobs run to completion this time.
	b.mu.Lock()
	b.block = nil
	b.mu.Unlock()
	s2 := journalScheduler(t, path, b)
	s2.Start()
	j1 := waitState(t, s2, "j000001", StateDone)
	waitState(t, s2, "j000002", StateDone)
	if !j1.Resumed {
		t.Error("restarted job not marked resumed")
	}
	s2.Close()

	// Third process: everything is terminal; nothing runs again.
	s3 := journalScheduler(t, path, newFailingStub(t))
	if got, _ := s3.Get("j000001"); got.State != StateDone {
		t.Errorf("job 1 = %s after third open, want done", got.State)
	}
	if got, _ := s3.Get("j000002"); got.State != StateDone {
		t.Errorf("job 2 = %s after third open, want done", got.State)
	}
}

// newFailingStub is a backend that fails the test if it ever runs.
func newFailingStub(t *testing.T) Backend {
	b := newStubBackend()
	b.fail = func(seed int64, _ int) error {
		t.Errorf("terminal job re-ran (seed %d)", seed)
		return errors.New("must not run")
	}
	return b
}

func TestJournalTornTailDroppedAndRequeued(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wj")
	writeJournal(t, path,
		submitRecord("j000001", 1, 1),
		record{Op: recDone, ID: "j000001"},
		submitRecord("j000002", 2, 2),
	)
	// Simulate a crash mid-append: half a record of garbage at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte("\x40\x00\x00\x00\x00\x00\x00\x00torn-checksum-and-truncated")
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b := newStubBackend()
	s := journalScheduler(t, path, b)
	s.Start()
	if m := s.Metrics(); m.JournalDroppedBytes != len(torn) {
		t.Errorf("dropped bytes = %d, want %d", m.JournalDroppedBytes, len(torn))
	}
	// The valid prefix survived: job 1 done, job 2 re-queued and runnable.
	if got, _ := s.Get("j000001"); got.State != StateDone {
		t.Errorf("job 1 = %s, want done", got.State)
	}
	waitState(t, s, "j000002", StateDone)
	s.Close()

	// The compaction cleaned the tail: reopening finds a pristine file.
	_, rec, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.DroppedBytes != 0 {
		t.Errorf("reopen dropped %d bytes, want 0 after compaction", rec.DroppedBytes)
	}
	// Original submits + done, plus the re-run's terminal record.
	if len(rec.Records) != 4 {
		t.Errorf("reopen found %d records, want 4", len(rec.Records))
	}
}

func TestJournalDuplicateTerminalSuppressed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wj")
	writeJournal(t, path,
		submitRecord("j000001", 1, 1),
		record{Op: recDone, ID: "j000001", Result: &Result{Detail: "first"}},
		record{Op: recDone, ID: "j000001", Result: &Result{Detail: "second"}},
		record{Op: recFail, ID: "j000001", Error: "late failure"},
	)
	s := journalScheduler(t, path, newFailingStub(t))
	got, _ := s.Get("j000001")
	if got.State != StateDone || got.Result == nil || got.Result.Detail != "first" {
		t.Errorf("job = %s result %+v, want done with the first result", got.State, got.Result)
	}
	if m := s.Metrics(); m.JournalDupTerminals != 2 {
		t.Errorf("dup terminals = %d, want 2", m.JournalDupTerminals)
	}
}

func TestJournalCorruptHeadQuarantined(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wj")
	if err := os.WriteFile(path, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	jr, rec, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	if !rec.Rewritten || rec.DroppedBytes == 0 || len(rec.Records) != 0 {
		t.Errorf("recovery = %+v, want rewritten with all bytes dropped", rec)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("corrupt original not preserved: %v", err)
	}
	// The fresh file accepts appends and round-trips.
	if err := jr.Append(submitRecord("j000001", 1, 1)); err != nil {
		t.Fatal(err)
	}
	jr.Close()
	_, rec2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Records) != 1 || rec2.DroppedBytes != 0 {
		t.Errorf("reopen = %+v, want 1 clean record", rec2)
	}
}

func TestJournalChecksumFlipDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wj")
	writeJournal(t, path,
		submitRecord("j000001", 1, 1),
		submitRecord("j000002", 2, 2),
	)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff // flip a payload byte of the last record
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 1 || rec.Records[0].ID != "j000001" {
		t.Errorf("records = %+v, want only the intact first record", rec.Records)
	}
	if rec.DroppedBytes == 0 {
		t.Error("flipped record not counted as dropped")
	}
}

func TestJournalRecordRoundTrip(t *testing.T) {
	spec := Spec{Backend: BackendSim, Seed: 7, ServerPair: "A",
		Sim: &SimJob{App: "tcpbulk", Duration: time.Second}}
	in := record{Op: recSubmit, ID: "j000042", Seq: 42, Spec: &spec}
	payload, err := json.Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	framed := frameRecord(nil, payload)
	got, rest, ok := nextRecord(framed)
	if !ok || len(rest) != 0 {
		t.Fatalf("nextRecord ok=%v rest=%d", ok, len(rest))
	}
	var out record
	if err := json.Unmarshal(got, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Seq != in.Seq || out.Spec.Sim.App != "tcpbulk" {
		t.Errorf("round trip = %+v, want %+v", out, in)
	}
}
