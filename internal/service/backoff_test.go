package service

import (
	"math/rand"
	"testing"
	"time"
)

func TestRetryDelayNeverExceedsMaxDelay(t *testing.T) {
	// A delay already at the cap used to jitter up to 1.5×MaxDelay because
	// jitter was applied after the clamp. The cap is documented as hard.
	p := RetryPolicy{BaseDelay: time.Second, MaxDelay: 4 * time.Second, JitterFrac: 0.5}
	rng := rand.New(rand.NewSource(42))
	sawCap := false
	for i := 0; i < 200; i++ {
		d := p.delay(10, rng) // attempt 10: pre-jitter delay sits at the cap
		if d > p.MaxDelay {
			t.Fatalf("delay %v exceeds MaxDelay %v", d, p.MaxDelay)
		}
		if d == p.MaxDelay {
			sawCap = true
		}
	}
	// With JitterFrac 0.5, about half the draws multiply above 1 and must
	// clamp to exactly MaxDelay — if none did, the clamp is not exercised.
	if !sawCap {
		t.Error("no draw clamped to MaxDelay; the post-jitter cap is untested")
	}
}

func TestRetryDelayBelowCapKeepsSeededJitter(t *testing.T) {
	// The post-jitter clamp must not change schedules that stay below the
	// cap: same seed, same draws, same delays as the documented jitter law.
	p := RetryPolicy{BaseDelay: time.Second, MaxDelay: time.Minute, JitterFrac: 0.5}
	rngA := rand.New(rand.NewSource(7))
	rngB := rand.New(rand.NewSource(7))
	for attempt := 1; attempt <= 4; attempt++ {
		got := p.delay(attempt, rngB)
		base := p.BaseDelay << (attempt - 1)
		want := time.Duration(float64(base) * (0.5 + rngA.Float64()))
		if want < time.Millisecond {
			want = time.Millisecond
		}
		if got != want {
			t.Fatalf("attempt %d: delay = %v, want %v (seeded jitter changed)", attempt, got, want)
		}
	}
}
