package service

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	wehey "github.com/nal-epfl/wehey"
	"github.com/nal-epfl/wehey/internal/experiments"
	"github.com/nal-epfl/wehey/internal/measure"
	"github.com/nal-epfl/wehey/internal/simcache"
	"github.com/nal-epfl/wehey/internal/testbed"
	"github.com/nal-epfl/wehey/internal/trace"
)

// Backend executes one job attempt. Run must honor ctx: the scheduler
// cancels it on operator cancel, per-attempt deadline, and shutdown.
// Implementations must be safe for concurrent Run calls (the worker pool
// runs many attempts at once).
type Backend interface {
	Run(ctx context.Context, spec Spec) (*Result, error)
}

// SimBackend runs "sim" jobs: one netsim localization trial through the
// experiments/simcache path, so identical specs (including the seed)
// compute once and every repeat is a cache hit — the /metrics
// cache-hit-through counters make that visible.
type SimBackend struct {
	cache *experiments.SimCache
}

// NewSimBackend wraps the given cache (nil = a fresh in-memory cache).
func NewSimBackend(cache *experiments.SimCache) *SimBackend {
	if cache == nil {
		cache = experiments.NewSimCache()
	}
	return &SimBackend{cache: cache}
}

// CacheStats snapshots the underlying simulation cache counters.
func (b *SimBackend) CacheStats() simcache.Stats { return b.cache.Stats() }

// Run executes the trial and classifies the topology with the
// common-bottleneck detector (loss-trend correlation; a sim job has no
// historical T_diff). The simulation itself is not interruptible — it is
// a pure in-process computation — so ctx is checked around it: a canceled
// attempt never reports success.
func (b *SimBackend) Run(ctx context.Context, spec Spec) (*Result, error) {
	p := spec.Sim
	simSpec := experiments.SimSpec{
		App:         p.App,
		InputFactor: p.InputFactor,
		QueueFactor: p.QueueFactor,
		BgShare:     p.BgShare,
		Duration:    p.Duration,
		Seed:        spec.Seed,
	}
	if simSpec.App == "" {
		simSpec.App = experiments.TCPBulkApp
	}
	if simSpec.Duration <= 0 {
		simSpec.Duration = 3 * time.Second
	}
	placement := p.Placement
	switch placement {
	case "", "common":
		simSpec.Placement = experiments.LimiterCommon
		placement = "common"
	case "noncommon":
		simSpec.Placement = experiments.LimiterNonCommon
	default:
		return nil, fmt.Errorf("service: unknown sim placement %q", p.Placement)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The verdict path is shared with internal/fleet's direct harness
	// (experiments.Config.Verdict seeds its detector with
	// DetectSeed(spec.Seed) == jobSeed("sim-detect", spec.Seed)), so a
	// fleet campaign evaluated in-process and one driven through this
	// backend report bit-identical verdicts per spec.
	v, err := experiments.Config{Cache: b.cache}.Verdict(simSpec)
	if err != nil {
		return nil, fmt.Errorf("service: sim detection: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Result{
		Backend: BackendSim,
		// The trial starts from a throttled topology, so WeHe's end-to-end
		// verdict and the simultaneous confirmation hold by construction.
		WeHeDetected:   true,
		Confirmed:      true,
		LocalizedToISP: v.LocalizedToISP,
		Evidence:       v.Evidence,
		LossRates:      v.LossRate,
		Detail: fmt.Sprintf("sim %s placement=%s loss=%.3f/%.3f",
			simSpec.App, placement, v.LossRate[0], v.LossRate[1]),
	}, nil
}

// NullBackend runs "null" jobs: it returns a canned result immediately.
// With it installed, a job's end-to-end cost is pure control plane —
// admission, journal commit, scheduling, completion — which is exactly
// what the service benchmarks and the CI load phase want to measure.
type NullBackend struct{}

// Run completes instantly (still honoring a pre-canceled context).
func (NullBackend) Run(ctx context.Context, spec Spec) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Result{Backend: BackendNull, Detail: "null backend"}, nil
}

// TestbedBackend runs "testbed" jobs: a full WeHeY localization session
// (single replays, simultaneous replays, confirmation, common-bottleneck
// detection) over real UDP sockets through the in-process differentiating
// middlebox. Cancellation propagates into every replay via ctx.
type TestbedBackend struct{}

// Run executes one localization session.
func (b *TestbedBackend) Run(ctx context.Context, spec Spec) (*Result, error) {
	p := spec.Testbed
	cfg := testbedParams{
		app:   p.App,
		rate:  p.Rate,
		delay: p.Delay,
		dur:   p.Duration,
	}
	if cfg.app == "" {
		cfg.app = "netflix"
	}
	if cfg.rate <= 0 {
		cfg.rate = 3e6
	}
	if cfg.delay <= 0 {
		cfg.delay = 5 * time.Millisecond
	}
	if cfg.dur <= 0 {
		cfg.dur = 500 * time.Millisecond
	}
	sess, err := newCtxTestbedSession(ctx, cfg, spec.Seed)
	if err != nil {
		return nil, err
	}
	loc := wehey.Localizer{
		Rand: rand.New(rand.NewSource(jobSeed("testbed-detect", spec.Seed))),
	}
	v, err := loc.Localize(sess, nil)
	if err != nil {
		// The localizer wraps the replay error; surface a ctx cancel as
		// such so the scheduler files the attempt correctly.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, err
	}
	res := &Result{
		Backend:        BackendTestbed,
		WeHeDetected:   v.WeHeDetected,
		Confirmed:      v.Confirmed,
		LocalizedToISP: v.LocalizedToISP,
		Evidence:       v.Evidence.String(),
		LossRates:      sess.origSimLossRates(),
		Detail:         v.String(),
	}
	return res, nil
}

// testbedParams is the filled TestbedJob.
type testbedParams struct {
	app   string
	rate  float64
	delay time.Duration
	dur   time.Duration
}

// ctxTestbedSession is a context-aware sibling of wehey.TestbedSession:
// the same replay structure (fresh identically-configured middlebox per
// replay, truly concurrent simultaneous replays), but every replay runs
// under the attempt's context so cancellation tears the session down
// promptly instead of waiting out the replay duration.
type ctxTestbedSession struct {
	ctx  context.Context
	cfg  testbedParams
	orig *trace.Trace
	inv  *trace.Trace

	mu      sync.Mutex
	connID  uint32
	origSim [2]*measure.Path // measurements of the original simultaneous replay
}

// origSimLossRates reports the two paths' loss rates from the original
// simultaneous replay (zeros before it ran).
func (s *ctxTestbedSession) origSimLossRates() [2]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out [2]float64
	for i, m := range s.origSim {
		if m != nil {
			out[i] = m.LossRate()
		}
	}
	return out
}

func newCtxTestbedSession(ctx context.Context, cfg testbedParams, seed int64) (*ctxTestbedSession, error) {
	tr, err := trace.Generate(cfg.app, rand.New(rand.NewSource(seed)), cfg.dur+time.Second)
	if err != nil {
		return nil, fmt.Errorf("service: testbed session: %w", err)
	}
	return &ctxTestbedSession{
		ctx:  ctx,
		cfg:  cfg,
		orig: tr,
		inv:  trace.BitInvert(tr),
	}, nil
}

func (s *ctxTestbedSession) middlebox() *testbed.Middlebox {
	return testbed.NewMiddlebox(testbed.MiddleboxConfig{
		Delay: s.cfg.delay,
		SNIs:  testbed.SNIsForApps(s.cfg.app),
		Rate:  s.cfg.rate,
		Burst: int(s.cfg.rate / 8 * (2 * s.cfg.delay).Seconds()),
	})
}

func (s *ctxTestbedSession) nextConn() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.connID++
	return s.connID
}

func (s *ctxTestbedSession) pick(original bool) *trace.Trace {
	if original {
		return s.orig
	}
	return s.inv
}

// SingleReplay implements wehey.ReplaySession on p0.
func (s *ctxTestbedSession) SingleReplay(original bool) (wehey.PathReplay, error) {
	mb := s.middlebox()
	defer mb.Close()
	res, err := testbed.RunReliableReplay(s.ctx, mb, "p0",
		s.pick(original), s.cfg.dur, s.nextConn())
	if err != nil {
		return wehey.PathReplay{}, err
	}
	m := res.Measurements
	return wehey.PathReplay{Throughput: res.Throughput, Measurements: &m}, nil
}

// SimultaneousReplay implements wehey.ReplaySession on p1, p2: both
// replays run concurrently through one shared middlebox (the per-client
// bottleneck).
func (s *ctxTestbedSession) SimultaneousReplay(original bool) ([2]wehey.PathReplay, error) {
	mb := s.middlebox()
	defer mb.Close()
	tr := s.pick(original)

	var wg sync.WaitGroup
	var out [2]wehey.PathReplay
	errs := [2]error{}
	for i := 0; i < 2; i++ {
		i := i
		name := fmt.Sprintf("p%d", i+1)
		id := s.nextConn()
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := testbed.RunReliableReplay(s.ctx, mb, name, tr, s.cfg.dur, id)
			if err != nil {
				errs[i] = err
				return
			}
			m := res.Measurements
			out[i] = wehey.PathReplay{Throughput: res.Throughput, Measurements: &m}
			if original {
				s.mu.Lock()
				s.origSim[i] = &m
				s.mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

var _ wehey.ReplaySession = (*ctxTestbedSession)(nil)
