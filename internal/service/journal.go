package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nal-epfl/wehey/internal/clock"
)

// The journal is the scheduler's crash-safety layer: an append-only file
// of checksummed, length-prefixed records (the internal/simcache on-disk
// conventions — an 8-byte magic doubling as the format version, 8-byte LE
// payload length, the payload's SHA-256, then the payload). Submissions
// and terminal transitions are the only journaled events; running state
// is reconstructed by re-queuing every non-terminal job on recovery,
// which is exactly the resume-once semantics a restart needs: a job with
// a terminal record never runs again, a job without one runs again
// exactly once.
//
// Durability is group-committed (DESIGN.md §15): Append and AppendBatch
// enqueue records on an in-memory batch and block until a dedicated
// committer goroutine has written *and fsynced* the batch they are part
// of. N concurrent appends therefore cost one write+fsync instead of N,
// while the exactly-once contract is unchanged — no caller is ever
// acknowledged before its record is durable. The batch policy is
// MaxBatch (cap on records per commit) and MaxDelay (how long the
// committer dwells waiting for a batch to fill; 0 = commit immediately,
// batching then emerges purely from fsync backpressure). All waiting
// flows through an injected clock.Clock so tests run instantly.
//
// Recovery tolerates a torn tail (the process died mid-append): framing
// stops at the first malformed record, the tail is dropped and counted,
// and the file is compacted — rewritten through a temp file and an atomic
// rename — so the next append lands on a clean end of file. A batch is a
// durability unit, not a recovery-atomicity unit: records are framed
// individually, so a tear inside a batch keeps the batch's earlier
// records — safe, because no record of a torn batch was ever
// acknowledged (the fsync never returned).

// journalMagic identifies (and versions) the journal file format.
const journalMagic = "WHYJRNL1"

// recordHeaderSize frames each record: length + checksum.
const recordHeaderSize = 8 + sha256.Size

// recOp enumerates journaled events.
type recOp string

const (
	recSubmit recOp = "submit"
	recDone   recOp = "done"
	recFail   recOp = "fail"
	recCancel recOp = "cancel"
)

// record is one journal entry (JSON payload inside the binary framing).
type record struct {
	Op     recOp   `json:"op"`
	ID     string  `json:"id"`
	Seq    uint64  `json:"seq,omitempty"`
	Spec   *Spec   `json:"spec,omitempty"`
	Result *Result `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// Recovery summarizes what opening a journal found.
type Recovery struct {
	// Records are the valid records in append order.
	Records []record
	// DroppedBytes counts torn-tail bytes discarded (0 = clean file).
	DroppedBytes int
	// Rewritten reports that the file was compacted (torn tail or
	// unreadable head) via temp-file + atomic rename.
	Rewritten bool
}

// ErrJournalClosed is returned by Append/AppendBatch once Close has begun
// and the record was not part of the final drained batch. A caller that
// sees it knows its record is NOT durable.
var ErrJournalClosed = errors.New("service: journal closed")

// JournalOptions shapes the group-commit pipeline. The zero value of
// every field means "use the default".
type JournalOptions struct {
	// MaxBatch caps the records fsynced per commit (default 256). Excess
	// queued records wait for the next commit.
	MaxBatch int
	// MaxDelay is how long the committer dwells after the first record of
	// an under-full batch arrives, waiting for the batch to fill, before
	// committing anyway (default 0: commit immediately — lowest latency;
	// batching still emerges because appends arriving during an fsync
	// coalesce into the next one).
	MaxDelay time.Duration
	// Clock paces the MaxDelay dwell (default clock.System; tests inject
	// clock.Manual so dwell policy tests are instant).
	Clock clock.Clock
}

func (o JournalOptions) fill() JournalOptions {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.Clock == nil {
		o.Clock = clock.System
	}
	return o
}

// jWaiter is one Append/AppendBatch call parked in the commit queue: its
// records, and a buffered channel the committer resolves after the fsync
// covering them returns.
type jWaiter struct {
	recs []record
	done chan error
}

// JournalStats snapshots the commit pipeline counters (monotonic).
type JournalStats struct {
	// Commits counts write+fsync batches.
	Commits int64
	// Records counts records made durable across all commits; Records /
	// Commits is the achieved group-commit factor.
	Records int64
}

// Journal is an open, append-position-clean campaign journal with a
// running group-commit pipeline.
type Journal struct {
	path string
	opts JournalOptions

	mu     sync.Mutex
	f      *os.File
	queue  []jWaiter
	closed bool
	ioErr  error // sticky: a failed write may leave a torn tail mid-file

	kick    chan struct{} // capacity 1: work arrived
	closing chan struct{} // Close begun: drain and exit
	done    chan struct{} // committer exited

	commits atomic.Int64
	records atomic.Int64
}

// OpenJournal opens the journal at path with default group-commit
// options. See OpenJournalOptions.
func OpenJournal(path string) (*Journal, Recovery, error) {
	return OpenJournalOptions(path, JournalOptions{})
}

// OpenJournalOptions opens (creating if missing) the journal at path,
// validates every record, repairs a torn tail, starts the commit
// pipeline, and returns the surviving records.
func OpenJournalOptions(path string, opts JournalOptions) (*Journal, Recovery, error) {
	var rec Recovery
	raw, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return nil, rec, fmt.Errorf("service: journal dir: %w", err)
		}
		raw = nil
	case err != nil:
		return nil, rec, fmt.Errorf("service: read journal: %w", err)
	}

	if len(raw) > 0 {
		if len(raw) < len(journalMagic) || string(raw[:len(journalMagic)]) != journalMagic {
			// Unrecognized head: preserve the evidence, start fresh.
			rec.Rewritten = true
			rec.DroppedBytes = len(raw)
			if err := os.Rename(path, path+".corrupt"); err != nil {
				return nil, rec, fmt.Errorf("service: quarantine corrupt journal: %w", err)
			}
			raw = nil
		}
	}

	var good int // bytes of raw known to be well-formed
	if len(raw) > 0 {
		good = len(journalMagic)
		body := raw[good:]
		for len(body) > 0 {
			payload, rest, ok := nextRecord(body)
			if !ok {
				break
			}
			var r record
			if err := json.Unmarshal(payload, &r); err != nil {
				break
			}
			rec.Records = append(rec.Records, r)
			good += len(body) - len(rest)
			body = rest
		}
		rec.DroppedBytes = len(raw) - good
	}

	if rec.DroppedBytes > 0 || len(raw) == 0 {
		// Compact: rewrite the valid prefix (or a fresh header) through a
		// temp file and rename it into place, so the appender never sits
		// after torn bytes.
		if err := writeCompacted(path, rec.Records); err != nil {
			return nil, rec, err
		}
		rec.Rewritten = rec.Rewritten || rec.DroppedBytes > 0
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, rec, fmt.Errorf("service: open journal for append: %w", err)
	}
	j := &Journal{
		path:    path,
		opts:    opts.fill(),
		f:       f,
		kick:    make(chan struct{}, 1),
		closing: make(chan struct{}),
		done:    make(chan struct{}),
	}
	go j.committer()
	return j, rec, nil
}

// nextRecord parses one framed record, returning its payload and the rest.
func nextRecord(b []byte) (payload, rest []byte, ok bool) {
	if len(b) < recordHeaderSize {
		return nil, nil, false
	}
	n := binary.LittleEndian.Uint64(b)
	if n > uint64(len(b)-recordHeaderSize) {
		return nil, nil, false
	}
	payload = b[recordHeaderSize : recordHeaderSize+int(n)]
	var want [sha256.Size]byte
	copy(want[:], b[8:])
	if sha256.Sum256(payload) != want {
		return nil, nil, false
	}
	return payload, b[recordHeaderSize+int(n):], true
}

// frameRecord appends the binary framing of payload to buf.
func frameRecord(buf, payload []byte) []byte {
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(hdr[8:], sum[:])
	return append(append(buf, hdr[:]...), payload...)
}

// writeCompacted atomically replaces the journal with magic + records.
func writeCompacted(path string, records []record) error {
	buf := []byte(journalMagic)
	for i := range records {
		payload, err := json.Marshal(&records[i])
		if err != nil {
			return fmt.Errorf("service: encode journal record: %w", err)
		}
		buf = frameRecord(buf, payload)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".journal-*")
	if err != nil {
		return fmt.Errorf("service: compact journal: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("service: compact journal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("service: compact journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: compact journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: compact journal: %w", err)
	}
	return nil
}

// Append journals one record durably: it blocks until the group commit
// containing the record has fsynced. A nil return means the record is on
// disk; a crash after Append never forgets the event, a crash during it
// leaves a torn tail the next OpenJournal repairs.
func (j *Journal) Append(r record) error {
	return j.AppendBatch([]record{r})
}

// AppendBatch journals a group of records durably under a single waiter:
// all of them are covered by one commit (one fsync when they fit in
// MaxBatch), and the call blocks until that commit returns. The batch is
// a durability unit — on a nil return every record is on disk; on an
// error none of them was acknowledged.
func (j *Journal) AppendBatch(recs []record) error {
	if len(recs) == 0 {
		return nil
	}
	w := jWaiter{recs: recs, done: make(chan error, 1)}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrJournalClosed
	}
	if err := j.ioErr; err != nil {
		// A previous commit failed mid-write: the file may hold a torn
		// record mid-stream, and anything appended after it would be
		// unreachable at recovery. Refuse instead of acking into the void.
		j.mu.Unlock()
		return err
	}
	j.queue = append(j.queue, w)
	j.mu.Unlock()
	select {
	case j.kick <- struct{}{}:
	default: // committer already signaled
	}
	return <-w.done
}

// committer is the commit pipeline: it collects queued waiters into
// batches of at most MaxBatch records, optionally dwells MaxDelay for an
// under-full batch to fill, performs one write+fsync per batch, and then
// releases every waiter the batch covered. On Close it drains the queue
// — every record enqueued before Close is either committed-and-acked or
// was rejected with ErrJournalClosed before enqueueing; an unsynced
// record is never acknowledged.
func (j *Journal) committer() {
	defer close(j.done)
	for {
		j.mu.Lock()
		for len(j.queue) == 0 {
			closed := j.closed
			j.mu.Unlock()
			if closed {
				return
			}
			select {
			case <-j.kick:
			case <-j.closing:
			}
			j.mu.Lock()
		}
		j.mu.Unlock()

		j.dwell()
		batch, nrec := j.takeBatch()
		if len(batch) == 0 {
			continue
		}
		err := j.commit(batch, nrec)
		for _, w := range batch {
			w.done <- err
		}
	}
}

// dwell waits up to MaxDelay for the pending batch to reach MaxBatch
// records, returning early on close or when the batch fills. With
// MaxDelay == 0 it returns immediately.
func (j *Journal) dwell() {
	if j.opts.MaxDelay <= 0 {
		return
	}
	t := j.opts.Clock.NewTimer(j.opts.MaxDelay)
	defer t.Stop()
	for {
		j.mu.Lock()
		full := j.queuedRecordsLocked() >= j.opts.MaxBatch || j.closed
		j.mu.Unlock()
		if full {
			return
		}
		select {
		case <-t.C():
			return
		case <-j.closing:
			return
		case <-j.kick:
			// More records arrived; re-check fullness.
		}
	}
}

func (j *Journal) queuedRecordsLocked() int {
	n := 0
	for _, w := range j.queue {
		n += len(w.recs)
	}
	return n
}

// takeBatch removes up to MaxBatch records' worth of waiters from the
// queue. A single oversized waiter (AppendBatch larger than MaxBatch) is
// taken alone rather than split: its durability unit is preserved.
func (j *Journal) takeBatch() (batch []jWaiter, nrec int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	i := 0
	for ; i < len(j.queue); i++ {
		n := len(j.queue[i].recs)
		if i > 0 && nrec+n > j.opts.MaxBatch {
			break
		}
		nrec += n
	}
	batch = j.queue[:i:i]
	j.queue = j.queue[i:]
	return batch, nrec
}

// commit writes one framed batch and fsyncs it. An error is sticky: a
// failed write can leave a torn record mid-file, after which further
// appends would be unrecoverable, so the journal refuses them.
func (j *Journal) commit(batch []jWaiter, nrec int) error {
	buf := make([]byte, 0, nrec*(recordHeaderSize+128))
	for _, w := range batch {
		for i := range w.recs {
			payload, err := json.Marshal(&w.recs[i])
			if err != nil {
				return j.fail(fmt.Errorf("service: encode journal record: %w", err))
			}
			buf = frameRecord(buf, payload)
		}
	}
	if _, err := j.f.Write(buf); err != nil {
		return j.fail(fmt.Errorf("service: append journal: %w", err))
	}
	if err := j.f.Sync(); err != nil {
		return j.fail(fmt.Errorf("service: sync journal: %w", err))
	}
	j.commits.Add(1)
	j.records.Add(int64(nrec))
	return nil
}

// fail records a sticky commit error.
func (j *Journal) fail(err error) error {
	j.mu.Lock()
	if j.ioErr == nil {
		j.ioErr = err
	}
	j.mu.Unlock()
	return err
}

// Stats snapshots the commit pipeline counters.
func (j *Journal) Stats() JournalStats {
	return JournalStats{Commits: j.commits.Load(), Records: j.records.Load()}
}

// Close drains the commit pipeline and releases the file handle. Appends
// enqueued before Close are committed and acknowledged; appends arriving
// after return ErrJournalClosed. Close never acknowledges an unsynced
// record, so it cannot lose data.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		<-j.done
		return nil
	}
	j.closed = true
	j.mu.Unlock()
	close(j.closing)
	<-j.done
	return j.f.Close()
}
