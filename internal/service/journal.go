package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// The journal is the scheduler's crash-safety layer: an append-only file
// of checksummed, length-prefixed records (the internal/simcache on-disk
// conventions — an 8-byte magic doubling as the format version, 8-byte LE
// payload length, the payload's SHA-256, then the payload). Submissions
// and terminal transitions are the only journaled events; running state
// is reconstructed by re-queuing every non-terminal job on recovery,
// which is exactly the resume-once semantics a restart needs: a job with
// a terminal record never runs again, a job without one runs again
// exactly once.
//
// Recovery tolerates a torn tail (the process died mid-append): framing
// stops at the first malformed record, the tail is dropped and counted,
// and the file is compacted — rewritten through a temp file and an atomic
// rename — so the next append lands on a clean end of file.

// journalMagic identifies (and versions) the journal file format.
const journalMagic = "WHYJRNL1"

// recordHeaderSize frames each record: length + checksum.
const recordHeaderSize = 8 + sha256.Size

// recOp enumerates journaled events.
type recOp string

const (
	recSubmit recOp = "submit"
	recDone   recOp = "done"
	recFail   recOp = "fail"
	recCancel recOp = "cancel"
)

// record is one journal entry (JSON payload inside the binary framing).
type record struct {
	Op     recOp   `json:"op"`
	ID     string  `json:"id"`
	Seq    uint64  `json:"seq,omitempty"`
	Spec   *Spec   `json:"spec,omitempty"`
	Result *Result `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// Recovery summarizes what opening a journal found.
type Recovery struct {
	// Records are the valid records in append order.
	Records []record
	// DroppedBytes counts torn-tail bytes discarded (0 = clean file).
	DroppedBytes int
	// Rewritten reports that the file was compacted (torn tail or
	// unreadable head) via temp-file + atomic rename.
	Rewritten bool
}

// Journal is an open, append-position-clean campaign journal.
type Journal struct {
	f    *os.File
	path string
}

// OpenJournal opens (creating if missing) the journal at path, validates
// every record, repairs a torn tail, and returns the surviving records.
func OpenJournal(path string) (*Journal, Recovery, error) {
	var rec Recovery
	raw, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return nil, rec, fmt.Errorf("service: journal dir: %w", err)
		}
		raw = nil
	case err != nil:
		return nil, rec, fmt.Errorf("service: read journal: %w", err)
	}

	if len(raw) > 0 {
		if len(raw) < len(journalMagic) || string(raw[:len(journalMagic)]) != journalMagic {
			// Unrecognized head: preserve the evidence, start fresh.
			rec.Rewritten = true
			rec.DroppedBytes = len(raw)
			if err := os.Rename(path, path+".corrupt"); err != nil {
				return nil, rec, fmt.Errorf("service: quarantine corrupt journal: %w", err)
			}
			raw = nil
		}
	}

	var good int // bytes of raw known to be well-formed
	if len(raw) > 0 {
		good = len(journalMagic)
		body := raw[good:]
		for len(body) > 0 {
			payload, rest, ok := nextRecord(body)
			if !ok {
				break
			}
			var r record
			if err := json.Unmarshal(payload, &r); err != nil {
				break
			}
			rec.Records = append(rec.Records, r)
			good += len(body) - len(rest)
			body = rest
		}
		rec.DroppedBytes = len(raw) - good
	}

	if rec.DroppedBytes > 0 || len(raw) == 0 {
		// Compact: rewrite the valid prefix (or a fresh header) through a
		// temp file and rename it into place, so the appender never sits
		// after torn bytes.
		if err := writeCompacted(path, rec.Records); err != nil {
			return nil, rec, err
		}
		rec.Rewritten = rec.Rewritten || rec.DroppedBytes > 0
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, rec, fmt.Errorf("service: open journal for append: %w", err)
	}
	return &Journal{f: f, path: path}, rec, nil
}

// nextRecord parses one framed record, returning its payload and the rest.
func nextRecord(b []byte) (payload, rest []byte, ok bool) {
	if len(b) < recordHeaderSize {
		return nil, nil, false
	}
	n := binary.LittleEndian.Uint64(b)
	if n > uint64(len(b)-recordHeaderSize) {
		return nil, nil, false
	}
	payload = b[recordHeaderSize : recordHeaderSize+int(n)]
	var want [sha256.Size]byte
	copy(want[:], b[8:])
	if sha256.Sum256(payload) != want {
		return nil, nil, false
	}
	return payload, b[recordHeaderSize+int(n):], true
}

// frameRecord appends the binary framing of payload to buf.
func frameRecord(buf, payload []byte) []byte {
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(hdr[8:], sum[:])
	return append(append(buf, hdr[:]...), payload...)
}

// writeCompacted atomically replaces the journal with magic + records.
func writeCompacted(path string, records []record) error {
	buf := []byte(journalMagic)
	for i := range records {
		payload, err := json.Marshal(&records[i])
		if err != nil {
			return fmt.Errorf("service: encode journal record: %w", err)
		}
		buf = frameRecord(buf, payload)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".journal-*")
	if err != nil {
		return fmt.Errorf("service: compact journal: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("service: compact journal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("service: compact journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: compact journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: compact journal: %w", err)
	}
	return nil
}

// Append journals one record durably (fsync before returning): a crash
// after Append never forgets the event, a crash during it leaves a torn
// tail the next OpenJournal repairs.
func (j *Journal) Append(r record) error {
	payload, err := json.Marshal(&r)
	if err != nil {
		return fmt.Errorf("service: encode journal record: %w", err)
	}
	if _, err := j.f.Write(frameRecord(nil, payload)); err != nil {
		return fmt.Errorf("service: append journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("service: sync journal: %w", err)
	}
	return nil
}

// Close releases the file handle.
func (j *Journal) Close() error { return j.f.Close() }
