package service

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// LoadJournalJobs reads a campaign journal without opening it for
// writing: no compaction, no appender, no mutation of the file — safe on
// a journal another process is still appending to, and the substrate of
// `wehey-map infer` (one-shot aggregation over a jobs dump). Records are
// folded into job snapshots exactly as scheduler recovery would fold
// them: a submit opens the job (queued), a terminal record closes it. A
// torn tail or malformed record simply ends the scan — every record
// before it is well-formed by construction.
func LoadJournalJobs(path string) ([]Job, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("service: read journal: %w", err)
	}
	if len(raw) < len(journalMagic) || string(raw[:len(journalMagic)]) != journalMagic {
		return nil, fmt.Errorf("service: %s is not a campaign journal", path)
	}

	byID := make(map[string]*Job)
	var order []*Job
	body := raw[len(journalMagic):]
	for len(body) > 0 {
		payload, rest, ok := nextRecord(body)
		if !ok {
			break
		}
		var r record
		if err := json.Unmarshal(payload, &r); err != nil {
			break
		}
		body = rest
		switch r.Op {
		case recSubmit:
			if r.Spec == nil || byID[r.ID] != nil {
				continue
			}
			j := &Job{ID: r.ID, Seq: r.Seq, Spec: *r.Spec, State: StateQueued}
			byID[r.ID] = j
			order = append(order, j)
		case recDone:
			if j := byID[r.ID]; j != nil && !j.State.Terminal() {
				j.State = StateDone
				j.Result = r.Result
			}
		case recFail:
			if j := byID[r.ID]; j != nil && !j.State.Terminal() {
				j.State = StateFailed
				j.Error = r.Error
			}
		case recCancel:
			if j := byID[r.ID]; j != nil && !j.State.Terminal() {
				j.State = StateCanceled
				j.Error = r.Error
			}
		}
	}

	out := make([]Job, len(order))
	for i, j := range order {
		out[i] = *j
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out, nil
}
