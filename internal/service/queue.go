package service

// jobHeap is the pending queue: a max-heap on (priority, -seq) — higher
// priority first, submission order within a priority. Jobs carry their
// heap index so cancellation can remove a queued job in O(log n).
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }

func (h jobHeap) Less(i, j int) bool {
	if h[i].Spec.Priority != h[j].Spec.Priority {
		return h[i].Spec.Priority > h[j].Spec.Priority
	}
	return h[i].Seq < h[j].Seq
}

func (h jobHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}

func (h *jobHeap) Push(x any) {
	j := x.(*job)
	j.heapIdx = len(*h)
	*h = append(*h, j)
}

func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIdx = -1
	*h = old[:n-1]
	return j
}
