package service

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/nal-epfl/wehey/internal/clock"
)

func TestSubmitBatchRunsAll(t *testing.T) {
	b := newStubBackend()
	s, _ := newTestScheduler(t, Options{Workers: 4}, b)
	specs := make([]Spec, 10)
	for i := range specs {
		specs[i] = stubSpec(int64(100 + i))
	}
	jobs, err := s.SubmitBatch(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(specs) {
		t.Fatalf("admitted %d jobs, want %d", len(jobs), len(specs))
	}
	for i, j := range jobs {
		if j.Seq != uint64(i+1) || j.Spec.Seed != specs[i].Seed {
			t.Errorf("job %d = seq %d seed %d, want seq %d seed %d",
				i, j.Seq, j.Spec.Seed, i+1, specs[i].Seed)
		}
		waitState(t, s, j.ID, StateDone)
	}
	m := s.Metrics()
	if m.BatchSubmits != 1 || m.BatchJobs != 10 {
		t.Errorf("batch counters = %d/%d, want 1/10", m.BatchSubmits, m.BatchJobs)
	}
	if m.Done != 10 {
		t.Errorf("done = %d, want 10", m.Done)
	}
}

func TestSubmitBatchAllOrNothing(t *testing.T) {
	b := newStubBackend()
	s, _ := newTestScheduler(t, Options{Workers: 1, QueueLimit: 4}, b)

	// One bad spec poisons the whole batch; nothing is admitted.
	specs := []Spec{stubSpec(1), {Backend: ""}, stubSpec(3)}
	if _, err := s.SubmitBatch(specs); err == nil {
		t.Fatal("batch with an invalid spec admitted")
	}
	if m := s.Metrics(); m.Submitted != 0 {
		t.Errorf("submitted = %d after rejected batch, want 0", m.Submitted)
	}

	// A batch larger than the remaining queue capacity is rejected whole.
	big := []Spec{stubSpec(1), stubSpec(2), stubSpec(3), stubSpec(4), stubSpec(5)}
	if _, err := s.SubmitBatch(big); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("oversized batch error = %v, want ErrQueueFull", err)
	}
	if m := s.Metrics(); m.Queued != 0 {
		t.Errorf("queued = %d after rejected batch, want 0", m.Queued)
	}
}

// TestBatchKillResumeExactlyOnce is the group-commit durability core:
// many goroutines batch-submit against a journaled scheduler, the
// process "dies" (the scheduler is abandoned without Close, exactly the
// state a SIGKILL leaves), and the next process must resume every
// acknowledged job exactly once — no acknowledged job lost, no
// unacknowledged job invented.
func TestBatchKillResumeExactlyOnce(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wj")
	s1, err := NewScheduler(Options{
		Workers:    2,
		QueueLimit: 4096,
		Clock:      clock.NewManual(time.Unix(1700000000, 0)),
		// MaxDelay stays 0 (a manual clock would park a dwell forever):
		// concurrent batches still share group commits through fsync
		// backpressure on the single committer.
		JournalPath: path,
		Backends:    map[string]Backend{"stub": newStubBackend()},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately never Start or Close s1: jobs stay queued, and
	// abandoning the scheduler leaves exactly the on-disk state a kill
	// would (every acknowledged record fsynced, nothing else).

	const goroutines, perBatch = 8, 25
	acked := make([][]Job, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			specs := make([]Spec, perBatch)
			for i := range specs {
				specs[i] = stubSpec(int64(g*1000 + i))
			}
			jobs, err := s1.SubmitBatch(specs)
			if err != nil {
				t.Errorf("SubmitBatch: %v", err)
				return
			}
			acked[g] = jobs
		}()
	}
	wg.Wait()

	// "Restart": recover the journal into a fresh scheduler.
	b2 := newStubBackend()
	s2 := journalScheduler(t, path, b2)
	wantJobs := map[string]int64{}
	for _, jobs := range acked {
		for _, j := range jobs {
			wantJobs[j.ID] = j.Spec.Seed
		}
	}
	list := s2.List()
	if len(list) != len(wantJobs) {
		t.Fatalf("recovered %d jobs, want %d (acked jobs only)", len(list), len(wantJobs))
	}
	for _, j := range list {
		seed, ok := wantJobs[j.ID]
		if !ok {
			t.Fatalf("recovered job %s was never acknowledged", j.ID)
		}
		if j.Spec.Seed != seed || j.State != StateQueued || !j.Resumed {
			t.Fatalf("job %s = seed %d state %s resumed %v, want seed %d queued resumed",
				j.ID, j.Spec.Seed, j.State, j.Resumed, seed)
		}
	}

	s2.Start()
	for id := range wantJobs {
		waitState(t, s2, id, StateDone)
	}
	// Exactly once: every seed ran a single time.
	for _, seed := range wantJobs {
		if n := b2.runCount(seed); n != 1 {
			t.Errorf("resumed job seed=%d ran %d times, want 1", seed, n)
		}
	}
}

// TestJournalTornTailAcrossBatchBoundary checks the recovery grain: the
// batch is a durability unit (one fsync) but not a recovery-atomicity
// unit — records are individually framed, so a torn tail inside the
// second batch keeps the first batch and the second's intact prefix.
func TestJournalTornTailAcrossBatchBoundary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wj")
	jr, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	batch1 := []record{submitRecord("j000001", 1, 1), submitRecord("j000002", 2, 2)}
	batch2 := []record{submitRecord("j000003", 3, 3), submitRecord("j000004", 4, 4)}
	if err := jr.AppendBatch(batch1); err != nil {
		t.Fatal(err)
	}
	if err := jr.AppendBatch(batch2); err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail mid-way through batch2's last record.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 3 {
		t.Fatalf("recovered %d records, want 3 (batch1 whole + batch2 prefix)", len(rec.Records))
	}
	for i, want := range []string{"j000001", "j000002", "j000003"} {
		if rec.Records[i].ID != want {
			t.Errorf("record %d = %s, want %s", i, rec.Records[i].ID, want)
		}
	}
	if rec.DroppedBytes == 0 {
		t.Error("torn record not counted as dropped")
	}
}

// TestJournalCloseDrainsInFlightAppends is the Close-contract regression
// test: appends racing Close are either fsynced-and-acknowledged or
// rejected with ErrJournalClosed — an append must never return nil
// without its record surviving on disk. The manual clock keeps the
// MaxDelay dwell from ever firing on its own, so the appends are genuinely
// parked in the pipeline when Close arrives.
func TestJournalCloseDrainsInFlightAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wj")
	mc := clock.NewManual(time.Unix(1700000000, 0))
	jr, _, err := OpenJournalOptions(path, JournalOptions{
		MaxBatch: 1024,
		MaxDelay: time.Hour, // only Close can flush the dwell
		Clock:    mc,
	})
	if err != nil {
		t.Fatal(err)
	}

	const appends = 32
	ackErr := make([]error, appends)
	var wg sync.WaitGroup
	for i := 0; i < appends; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ackErr[i] = jr.Append(submitRecord(fmt.Sprintf("j%06d", i+1), uint64(i+1), int64(i)))
		}()
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// Every nil-returning append's record must be recoverable.
	_, rec, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	onDisk := map[string]bool{}
	for _, r := range rec.Records {
		onDisk[r.ID] = true
	}
	var ackedOK, closed int
	for i, err := range ackErr {
		id := fmt.Sprintf("j%06d", i+1)
		switch {
		case err == nil:
			ackedOK++
			if !onDisk[id] {
				t.Errorf("append %s acknowledged but not on disk", id)
			}
		case errors.Is(err, ErrJournalClosed):
			closed++
		default:
			t.Errorf("append %s: unexpected error %v", id, err)
		}
	}
	if ackedOK+closed != appends {
		t.Errorf("acked %d + closed %d != %d appends", ackedOK, closed, appends)
	}
	if len(rec.Records) < ackedOK {
		t.Errorf("%d records on disk < %d acknowledged", len(rec.Records), ackedOK)
	}

	// Post-Close appends fail typed.
	if err := jr.Append(submitRecord("j999999", 999999, 0)); !errors.Is(err, ErrJournalClosed) {
		t.Errorf("append after close = %v, want ErrJournalClosed", err)
	}
	// Close is idempotent.
	if err := jr.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

// TestShardedSchedulerContention exercises the sharded hot path under
// -race: batched and single submissions across many distinct pairs
// (cross-shard traffic), a contended hot pair (same-shard
// serialization), concurrent cancels, and metrics/list/get readers.
func TestShardedSchedulerContention(t *testing.T) {
	b := newStubBackend()
	s, _ := newTestScheduler(t, Options{Workers: 8, QueueLimit: 4096, Shards: 8}, b)

	const submitters, perBatch = 6, 20
	var wg sync.WaitGroup
	ids := make(chan string, submitters*perBatch*2)
	for g := 0; g < submitters; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			specs := make([]Spec, perBatch)
			for i := range specs {
				specs[i] = stubSpec(int64(g*1000 + i))
				switch i % 3 {
				case 0:
					specs[i].ServerPair = "hot" // everyone fights for one pair
				case 1:
					specs[i].ServerPair = fmt.Sprintf("pair-%d-%d", g, i)
				}
			}
			jobs, err := s.SubmitBatch(specs)
			if err != nil {
				t.Errorf("SubmitBatch: %v", err)
				return
			}
			for _, j := range jobs {
				ids <- j.ID
			}
			// Singles interleave with batches.
			for i := 0; i < perBatch; i++ {
				j, err := s.Submit(Spec{Backend: "stub", Seed: int64(g*1000 + 500 + i),
					ServerPair: "hot"})
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				ids <- j.ID
			}
		}()
	}
	// Readers and cancelers race the submitters.
	stopReaders := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stopReaders:
					return
				case id := <-ids:
					if _, err := s.Get(id); err != nil {
						t.Errorf("Get(%s): %v", id, err)
					}
					if id[len(id)-1]%7 == 0 {
						s.Cancel(id) // races the claim path by design
					}
				default:
					s.Metrics()
					s.ListPage(0, 50)
				}
			}
		}()
	}
	wg.Wait()
	total := int64(submitters * perBatch * 2)
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := s.Metrics()
		if m.Done+m.Failed+m.Canceled == total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stuck: %+v (want %d terminal)", m, total)
		}
		time.Sleep(time.Millisecond)
	}
	close(stopReaders)
	readers.Wait()
	m := s.Metrics()
	if m.Queued != 0 || m.Running != 0 || m.WaitRetry != 0 {
		t.Errorf("gauges not drained: queued=%d running=%d waitRetry=%d",
			m.Queued, m.Running, m.WaitRetry)
	}
}

// TestPairExclusiveUnderBatch checks that pair exclusivity survives the
// sharded claim path: jobs sharing a pair never overlap even when they
// arrive in one batch and many workers race to claim them.
func TestPairExclusiveUnderBatch(t *testing.T) {
	b := newStubBackend()
	var mu sync.Mutex
	inFlight := map[string]int{}
	maxInFlight := map[string]int{}
	b.fail = func(seed int64, _ int) error { return nil }
	base, _ := newTestScheduler(t, Options{Workers: 8, Shards: 4}, b)

	// Wrap the stub so each run marks its pair busy for its duration.
	pairBackend := backendFunc(func(ctx context.Context, spec Spec) (*Result, error) {
		mu.Lock()
		inFlight[spec.ServerPair]++
		if inFlight[spec.ServerPair] > maxInFlight[spec.ServerPair] {
			maxInFlight[spec.ServerPair] = inFlight[spec.ServerPair]
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		mu.Lock()
		inFlight[spec.ServerPair]--
		mu.Unlock()
		return &Result{Backend: spec.Backend, Detail: "pair"}, nil
	})
	base.opts.Backends["pairstub"] = pairBackend

	specs := make([]Spec, 24)
	for i := range specs {
		specs[i] = Spec{Backend: "pairstub", Seed: int64(i),
			ServerPair: fmt.Sprintf("P%d", i%3)}
	}
	jobs, err := base.SubmitBatch(specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		waitState(t, base, j.ID, StateDone)
	}
	mu.Lock()
	defer mu.Unlock()
	for pair, peak := range maxInFlight {
		if peak > 1 {
			t.Errorf("pair %s ran %d jobs concurrently, want 1", pair, peak)
		}
	}
}

type backendFunc func(ctx context.Context, spec Spec) (*Result, error)

func (f backendFunc) Run(ctx context.Context, spec Spec) (*Result, error) { return f(ctx, spec) }

// TestJobsPagination10k drives the /jobs cursor end to end at the
// issue's scale: 10k jobs server-side, a capped page per request, and
// the client lister stitching them back together in order.
func TestJobsPagination10k(t *testing.T) {
	b := newStubBackend()
	s, err := NewScheduler(Options{
		Workers:    1,
		QueueLimit: 20000,
		Clock:      clock.NewManual(time.Unix(1700000000, 0)),
		Backends:   map[string]Backend{"stub": b},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	// Not started: the backlog stays queued, keeping the test about
	// listing, not execution.
	const total = 10000
	specs := make([]Spec, 1000)
	for page := 0; page < total/len(specs); page++ {
		for i := range specs {
			specs[i] = stubSpec(int64(page*len(specs) + i))
		}
		if _, err := s.SubmitBatch(specs); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(Handler(s))
	t.Cleanup(srv.Close)
	c := &Client{BaseURL: srv.URL}
	ctx := context.Background()

	// One raw page honors the server cap.
	page, err := c.JobsPage(ctx, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != listLimitMax {
		t.Fatalf("first page = %d jobs, want the %d cap", len(page), listLimitMax)
	}
	// A cursor resumes where the page ended.
	next, err := c.JobsPage(ctx, page[len(page)-1].ID, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(next) != 10 || next[0].Seq != page[len(page)-1].Seq+1 {
		t.Fatalf("cursor page starts at seq %d len %d, want seq %d len 10",
			next[0].Seq, len(next), page[len(page)-1].Seq+1)
	}

	// The transparent lister reassembles the full set in order.
	all, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != total {
		t.Fatalf("listed %d jobs, want %d", len(all), total)
	}
	for i, j := range all {
		if j.Seq != uint64(i+1) {
			t.Fatalf("job %d out of order: seq %d", i, j.Seq)
		}
	}
}

// TestBatchHTTPEndpoints round-trips the batch submit and status APIs
// through the real handler and client.
func TestBatchHTTPEndpoints(t *testing.T) {
	b := newStubBackend()
	s, _ := newTestScheduler(t, Options{Workers: 2}, b)
	srv := httptest.NewServer(Handler(s))
	t.Cleanup(srv.Close)
	c := &Client{BaseURL: srv.URL}
	ctx := context.Background()

	specs := []Spec{stubSpec(1), stubSpec(2), stubSpec(3)}
	jobs, err := c.SubmitBatch(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("batch returned %d jobs, want 3", len(jobs))
	}
	for _, j := range jobs {
		waitState(t, s, j.ID, StateDone)
	}

	got, missing, err := c.StatusBatch(ctx, []string{jobs[0].ID, "j999999", jobs[2].ID})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != jobs[0].ID || got[1].ID != jobs[2].ID {
		t.Fatalf("status batch jobs = %+v, want the two real IDs", got)
	}
	if len(missing) != 1 || missing[0] != "j999999" {
		t.Fatalf("missing = %v, want [j999999]", missing)
	}
	for _, j := range got {
		if j.State != StateDone {
			t.Errorf("job %s = %s, want done", j.ID, j.State)
		}
	}

	// An empty batch is a 400, not a panic or an empty 201.
	if _, err := c.SubmitBatch(ctx, nil); err == nil {
		t.Error("empty batch accepted")
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.BatchSubmits != 1 || m.BatchJobs != 3 {
		t.Errorf("batch counters = %d/%d, want 1/3", m.BatchSubmits, m.BatchJobs)
	}
}
