package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/nal-epfl/wehey/internal/clock"
)

// Client is a small typed client for the admin plane, used by
// cmd/wehey-submit, the tests, and the CI smoke job.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Clock paces Await polling (default clock.System).
	Clock clock.Clock
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) clk() clock.Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return clock.System
}

// do performs one request and decodes the JSON response into out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("service client: encode request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("service client: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("service client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("service client: %s %s: %s (%s)", method, path, resp.Status, e.Error)
		}
		return fmt.Errorf("service client: %s %s: %s", method, path, resp.Status)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("service client: decode response: %w", err)
	}
	return nil
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Submit posts a spec and returns the admitted job.
func (c *Client) Submit(ctx context.Context, spec Spec) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodPost, "/jobs", &spec, &job)
	return job, err
}

// Jobs lists every job.
func (c *Client) Jobs(ctx context.Context) ([]Job, error) {
	var jobs []Job
	err := c.do(ctx, http.MethodGet, "/jobs", nil, &jobs)
	return jobs, err
}

// Job fetches one job.
func (c *Client) Job(ctx context.Context, id string) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &job)
	return job, err
}

// Cancel cancels one job.
func (c *Client) Cancel(ctx context.Context, id string) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodDelete, "/jobs/"+id, nil, &job)
	return job, err
}

// Metrics fetches the counter snapshot.
func (c *Client) Metrics(ctx context.Context) (Metrics, error) {
	var m Metrics
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &m)
	return m, err
}

// Await polls a job until it reaches a terminal state, the context ends,
// or the server becomes unreachable. poll <= 0 defaults to 250 ms.
func (c *Client) Await(ctx context.Context, id string, poll time.Duration) (Job, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		job, err := c.Job(ctx, id)
		if err != nil {
			return Job{}, err
		}
		if job.State.Terminal() {
			return job, nil
		}
		t := c.clk().NewTimer(poll)
		select {
		case <-t.C():
		case <-ctx.Done():
			t.Stop()
			return job, ctx.Err()
		}
	}
}
