package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"github.com/nal-epfl/wehey/internal/clock"
)

// Client is a small typed client for the admin plane, used by
// cmd/wehey-submit, the tests, and the CI smoke job.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Clock paces Await polling (default clock.System).
	Clock clock.Clock
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) clk() clock.Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return clock.System
}

// do performs one request and decodes the JSON response into out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("service client: encode request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("service client: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("service client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("service client: %s %s: %s (%s)", method, path, resp.Status, e.Error)
		}
		return fmt.Errorf("service client: %s %s: %s", method, path, resp.Status)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("service client: decode response: %w", err)
	}
	return nil
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Submit posts a spec and returns the admitted job.
func (c *Client) Submit(ctx context.Context, spec Spec) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodPost, "/jobs", &spec, &job)
	return job, err
}

// SubmitBatch posts many specs in one round-trip (one journal group
// commit server-side) and returns the admitted jobs. Admission is
// all-or-nothing.
func (c *Client) SubmitBatch(ctx context.Context, specs []Spec) ([]Job, error) {
	var jobs []Job
	err := c.do(ctx, http.MethodPost, "/jobs:batch", &BatchRequest{Specs: specs}, &jobs)
	return jobs, err
}

// StatusBatch snapshots many jobs by ID in one round-trip, returning the
// jobs that exist and the IDs that do not.
func (c *Client) StatusBatch(ctx context.Context, ids []string) ([]Job, []string, error) {
	var resp BatchStatusResponse
	err := c.do(ctx, http.MethodPost, "/jobs/status:batch", &BatchStatusRequest{IDs: ids}, &resp)
	return resp.Jobs, resp.Missing, err
}

// Jobs lists every job, paging through the server's /jobs cursor so a
// 10k-job campaign arrives in bounded requests rather than one unbounded
// buffer. The full set is still materialized client-side; use JobsPage
// directly to stream.
func (c *Client) Jobs(ctx context.Context) ([]Job, error) {
	var all []Job
	after := ""
	for {
		page, err := c.JobsPage(ctx, after, 0)
		if err != nil {
			return nil, err
		}
		all = append(all, page...)
		if len(page) < jobsPageSize {
			return all, nil
		}
		after = page[len(page)-1].ID
	}
}

// jobsPageSize is the page the transparent lister asks for — the server's
// maximum, to minimize round-trips.
const jobsPageSize = listLimitMax

// JobsPage fetches one page of jobs after the given cursor (a job ID or
// sequence number; "" starts from the beginning). limit <= 0 asks for the
// server's maximum page.
func (c *Client) JobsPage(ctx context.Context, after string, limit int) ([]Job, error) {
	if limit <= 0 {
		limit = jobsPageSize
	}
	q := url.Values{}
	q.Set("limit", strconv.Itoa(limit))
	if after != "" {
		q.Set("after", after)
	}
	var jobs []Job
	err := c.do(ctx, http.MethodGet, "/jobs?"+q.Encode(), nil, &jobs)
	return jobs, err
}

// Job fetches one job.
func (c *Client) Job(ctx context.Context, id string) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &job)
	return job, err
}

// Cancel cancels one job.
func (c *Client) Cancel(ctx context.Context, id string) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodDelete, "/jobs/"+id, nil, &job)
	return job, err
}

// Metrics fetches the counter snapshot.
func (c *Client) Metrics(ctx context.Context) (Metrics, error) {
	var m Metrics
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &m)
	return m, err
}

// Await polls a job until it reaches a terminal state, the context ends,
// or the server becomes unreachable. poll <= 0 defaults to 250 ms.
func (c *Client) Await(ctx context.Context, id string, poll time.Duration) (Job, error) {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	for {
		job, err := c.Job(ctx, id)
		if err != nil {
			return Job{}, err
		}
		if job.State.Terminal() {
			return job, nil
		}
		t := c.clk().NewTimer(poll)
		select {
		case <-t.C():
		case <-ctx.Done():
			t.Stop()
			return job, ctx.Err()
		}
	}
}
