package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"github.com/nal-epfl/wehey/internal/twin"
)

// The admin plane is a plain net/http JSON API over the scheduler:
//
//	GET    /healthz           -> {"status":"ok"}
//	POST   /jobs              -> submit a Spec, returns the Job snapshot (201)
//	POST   /jobs:batch        -> submit many Specs in one round-trip (201)
//	POST   /jobs/status:batch -> snapshot many jobs by ID in one round-trip
//	GET    /jobs              -> list jobs in submission order, paged
//	                             (?after=<id|seq>&limit=<n>, n capped at 1000)
//	GET    /jobs/{id}         -> one job
//	DELETE /jobs/{id}         -> cancel (idempotent on terminal jobs)
//	GET    /metrics           -> Metrics counter snapshot
//	GET    /twin              -> M/G/c capacity prediction (see TwinAnswer)
//
// Errors travel as {"error": "..."} with the mapped status code.
//
// A batch submission is all-or-nothing: every spec validates and the
// whole batch rides one journal group commit, or nothing is admitted.
// /jobs responses are plain arrays capped at the page limit; clients page
// by passing the last seen job ID as `after` until a short page arrives.

// ListLimitMax caps one GET /jobs page. It doubles as the default, so a
// bare GET /jobs on a huge campaign returns a bounded page instead of
// buffering the full set. Exported so streaming consumers (the fleet
// follower) can recognize a short — therefore final — page.
const ListLimitMax = 1000

const listLimitMax = ListLimitMax

// BatchRequest is the POST /jobs:batch body.
type BatchRequest struct {
	Specs []Spec `json:"specs"`
}

// BatchStatusRequest is the POST /jobs/status:batch body.
type BatchStatusRequest struct {
	IDs []string `json:"ids"`
}

// BatchStatusResponse answers a status batch: snapshots for the IDs that
// exist, and the IDs that do not.
type BatchStatusResponse struct {
	Jobs    []Job    `json:"jobs"`
	Missing []string `json:"missing,omitempty"`
}

// Handler returns the admin-plane handler for a scheduler.
func Handler(s *Scheduler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		job, err := s.Submit(spec)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, job)
	})
	mux.HandleFunc("POST /jobs:batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if len(req.Specs) == 0 {
			writeError(w, http.StatusBadRequest, errors.New("service: batch has no specs"))
			return
		}
		jobs, err := s.SubmitBatch(req.Specs)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, jobs)
	})
	mux.HandleFunc("POST /jobs/status:batch", func(w http.ResponseWriter, r *http.Request) {
		var req BatchStatusRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		jobs, missing := s.GetBatch(req.IDs)
		writeJSON(w, http.StatusOK, BatchStatusResponse{Jobs: jobs, Missing: missing})
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		afterSeq, err := parseAfter(q.Get("after"))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		limit := listLimitMax
		if lv := q.Get("limit"); lv != "" {
			limit, err = strconv.Atoi(lv)
			if err != nil || limit < 1 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("service: limit must be a positive integer, got %q", lv))
				return
			}
			if limit > listLimitMax {
				limit = listLimitMax
			}
		}
		writeJSON(w, http.StatusOK, s.ListPage(afterSeq, limit))
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := s.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, job)
	})
	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, job)
	})
	mux.HandleFunc("GET /twin", func(w http.ResponseWriter, r *http.Request) {
		handleTwin(s, w, r)
	})
	return mux
}

// TwinAnswer is the /twin response: the analytical M/G/c view of this
// scheduler at a hypothetical arrival rate, parameterized by the measured
// service-time moments (or explicit overrides). Sojourn fields are absent
// when the configuration is unstable (ρ ≥ 1).
type TwinAnswer struct {
	// Lambda echoes the asked arrival rate (jobs/s).
	Lambda float64 `json:"lambda"`
	// Workers is the evaluated pool size (query param, default: the
	// scheduler's own pool).
	Workers int `json:"workers"`
	// MeanServiceS / SCV are the model inputs; MomentSource says whether
	// they were measured from completed jobs or overridden in the query.
	MeanServiceS float64 `json:"mean_service_s"`
	SCV          float64 `json:"scv"`
	MomentSource string  `json:"moment_source"`
	SampleCount  int64   `json:"sample_count,omitempty"`

	Utilization float64 `json:"utilization"`
	Stable      bool    `json:"stable"`

	MeanSojournS float64 `json:"mean_sojourn_s,omitempty"`
	P50SojournS  float64 `json:"p50_sojourn_s,omitempty"`
	P95SojournS  float64 `json:"p95_sojourn_s,omitempty"`

	// TargetP95S/MinWorkers answer the sizing question when a p95 target
	// was asked: the smallest pool meeting it (0 = infeasible ≤ 1024).
	TargetP95S float64 `json:"target_p95_s,omitempty"`
	MinWorkers int     `json:"min_workers,omitempty"`
}

// handleTwin serves GET /twin. Query parameters:
//
//	rate     arrival rate in jobs/s (required)
//	workers  pool size to evaluate (default: the live pool)
//	p95      target p95 sojourn in seconds (optional: adds MinWorkers)
//	mean     mean service-time override in seconds
//	scv      service-time SCV override (with mean; default 1)
//
// Without overrides the model runs on moments measured from completed
// jobs; 422 when none exist yet.
func handleTwin(s *Scheduler, w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	lambda, err := strconv.ParseFloat(q.Get("rate"), 64)
	if err != nil || lambda < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("twin: rate must be a non-negative number, got %q", q.Get("rate")))
		return
	}
	ans := TwinAnswer{Lambda: lambda}

	count, mean, scv := s.ServiceMoments()
	ans.MomentSource = "measured"
	ans.SampleCount = count
	if mv := q.Get("mean"); mv != "" {
		mean, err = strconv.ParseFloat(mv, 64)
		if err != nil || mean <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("twin: mean must be a positive number, got %q", mv))
			return
		}
		scv = 1
		ans.MomentSource = "override"
		ans.SampleCount = 0
	}
	if sv := q.Get("scv"); sv != "" {
		if ans.MomentSource != "override" {
			writeError(w, http.StatusBadRequest, errors.New("twin: scv override requires a mean override"))
			return
		}
		scv, err = strconv.ParseFloat(sv, 64)
		if err != nil || scv < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("twin: scv must be a non-negative number, got %q", sv))
			return
		}
	}
	if ans.MomentSource == "measured" && count == 0 {
		writeError(w, http.StatusUnprocessableEntity,
			errors.New("twin: no completed jobs to measure service moments from; pass mean= (and scv=) overrides"))
		return
	}
	ans.MeanServiceS = mean
	ans.SCV = scv

	workers := s.opts.Workers
	if wv := q.Get("workers"); wv != "" {
		workers, err = strconv.Atoi(wv)
		if err != nil || workers < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("twin: workers must be a positive integer, got %q", wv))
			return
		}
	}
	ans.Workers = workers

	m := twin.MGc{Lambda: lambda, Servers: workers, MeanService: mean, SCV: scv}
	ans.Utilization = m.Utilization()
	ans.Stable = m.Stable()
	if ans.Stable {
		ans.MeanSojournS = m.MeanSojourn()
		ans.P50SojournS = m.SojournQuantile(0.50)
		ans.P95SojournS = m.SojournQuantile(0.95)
	}
	if tv := q.Get("p95"); tv != "" {
		target, err := strconv.ParseFloat(tv, 64)
		if err != nil || target <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("twin: p95 must be a positive number, got %q", tv))
			return
		}
		ans.TargetP95S = target
		ans.MinWorkers = twin.MinServers(lambda, mean, scv, 0.95, target, 1024)
	}
	writeJSON(w, http.StatusOK, ans)
}

// parseAfter resolves the /jobs `after` cursor: empty (start), a job ID
// like "j000042", or a bare sequence number. Both forms name the same
// ordering because IDs are minted from sequence numbers.
func parseAfter(v string) (uint64, error) {
	if v == "" {
		return 0, nil
	}
	digits := v
	if digits[0] == 'j' {
		digits = digits[1:]
	}
	seq, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("service: after must be a job ID or sequence number, got %q", v)
	}
	return seq, nil
}

// statusFor maps scheduler errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) // a failed response write leaves nothing to report to
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
