package service

import (
	"encoding/json"
	"errors"
	"net/http"
)

// The admin plane is a plain net/http JSON API over the scheduler:
//
//	GET    /healthz      -> {"status":"ok"}
//	POST   /jobs         -> submit a Spec, returns the Job snapshot (201)
//	GET    /jobs         -> list every job in submission order
//	GET    /jobs/{id}    -> one job
//	DELETE /jobs/{id}    -> cancel (idempotent on terminal jobs)
//	GET    /metrics      -> Metrics counter snapshot
//
// Errors travel as {"error": "..."} with the mapped status code.

// Handler returns the admin-plane handler for a scheduler.
func Handler(s *Scheduler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		job, err := s.Submit(spec)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, job)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := s.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, job)
	})
	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, job)
	})
	return mux
}

// statusFor maps scheduler errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //lint:ignore errcheck a failed response write leaves nothing to report to
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
