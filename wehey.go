// Package wehey is the public API of WeHeY, a system that localizes
// traffic differentiation (Shmeis et al., ACM IMC 2023). Where WeHe only
// detects that an original and a bit-inverted replay achieve different
// throughput *somewhere* on a path, WeHeY determines whether the
// differentiation happened inside the client's ISP.
//
// A localization run performs the four operations of the paper's §3.1:
//
//  1. Topology construction — pick two servers whose paths to the client
//     converge exactly once, inside the client's ISP (Localizer.Servers,
//     backed by a topology.DB built by the TC module).
//  2. Simultaneous replays — replay the original and bit-inverted traces
//     on both paths at once, collecting throughput and loss measurements
//     (the ReplaySession interface; sessions exist for the discrete-event
//     simulator and the loopback testbed).
//  3. Differentiation confirmation — WeHe's KS-based detector must flag
//     both paths.
//  4. Common-bottleneck detection — the throughput comparison (per-client
//     throttling) and loss-trend correlation (collective throttling)
//     algorithms of §4.
//
// The outcome is deliberately one-sided, like the paper's: either concrete
// evidence that the differentiation happens within the client's ISP, or no
// additional information beyond WeHe's detection.
package wehey

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/nal-epfl/wehey/internal/core"
	"github.com/nal-epfl/wehey/internal/measure"
	"github.com/nal-epfl/wehey/internal/topology"
	"github.com/nal-epfl/wehey/internal/wehe"
)

// PathReplay is one path's worth of measurements from a replay.
type PathReplay struct {
	// Throughput holds the client-side per-interval throughput samples.
	Throughput measure.Throughput
	// Measurements holds the packet-loss record (nil for replays where it
	// was not collected, e.g. the bit-inverted control).
	Measurements *measure.Path
}

// ReplaySession abstracts the measurement substrate. Implementations exist
// for the discrete-event simulator (SimSession) and for the loopback
// testbed; a production implementation would drive real WeHe servers.
type ReplaySession interface {
	// SingleReplay replays one trace on the detection path p0 and returns
	// its measurements. original selects the original vs the bit-inverted
	// trace.
	SingleReplay(original bool) (PathReplay, error)
	// SimultaneousReplay replays on the two converging paths p1, p2 at
	// once and returns their measurements in path order.
	SimultaneousReplay(original bool) ([2]PathReplay, error)
}

// Verdict is the outcome of a localization run.
type Verdict struct {
	// WeHeDetected reports WeHe's end-to-end differentiation verdict on
	// p0. When false, there is nothing to localize.
	WeHeDetected bool
	// Confirmed reports whether both p1 and p2 showed differentiation
	// during the simultaneous replays (operation 3).
	Confirmed bool
	// Evidence classifies what the common-bottleneck detector found.
	Evidence core.Evidence
	// LocalizedToISP is the headline answer: true iff the run produced
	// concrete evidence that the differentiation happens within the
	// client's ISP.
	LocalizedToISP bool
	// Detail carries the underlying algorithm outputs for reporting.
	Detail core.DetectorResult
	// X and Y are the §4.1 throughput sample sets (single and aggregate
	// simultaneous), kept for rendering and audit.
	X, Y []float64
}

// String summarizes the verdict in one line.
func (v Verdict) String() string {
	switch {
	case !v.WeHeDetected:
		return "no differentiation detected (nothing to localize)"
	case v.LocalizedToISP:
		return fmt.Sprintf("differentiation localized to the client's ISP (%s)", v.Evidence)
	default:
		return "differentiation detected, but no evidence it happens within the client's ISP"
	}
}

// Localizer runs WeHeY localizations. All fields are optional except Rand;
// a nil TopologyDB skips server selection (the session is assumed
// pre-wired), and an empty TDiff skips the throughput comparison (the
// loss-trend correlation still runs).
type Localizer struct {
	// Rand drives the Monte-Carlo subsampling; required.
	Rand *rand.Rand
	// TopologyDB is the TC module's output, used by Servers.
	TopologyDB *topology.DB
	// History is the past-tests database from which T_diff distributions
	// are derived per client/app/carrier.
	History *wehe.History
	// Detector configures the two detection algorithms; zero value = the
	// paper's settings.
	Detector core.DetectorConfig
	// Detection configures WeHe's KS-based detector.
	Detection wehe.DetectionConfig
}

// ErrNoTopology is returned when no suitable server pair exists for a
// client.
var ErrNoTopology = errors.New("wehey: no suitable topology for client")

// ErrTopologyChanged is returned when the post-replay traceroutes show the
// topology was no longer suitable (§3.4 step 4): the measurements are
// discarded and the topology database should be refreshed.
var ErrTopologyChanged = errors.New("wehey: topology no longer suitable; measurements discarded")

// TopologyVerifier is optionally implemented by sessions that can re-check
// topology suitability after the replays — §3.4 step 4: "the server ...
// verifies that the topology was still suitable at the end of the replays.
// If not, it discards the measurements and updates the topology database."
type TopologyVerifier interface {
	// VerifyTopology reports whether the paths still converge exactly once
	// inside the target network area.
	VerifyTopology() (bool, error)
}

// Servers returns a server pair forming a suitable topology with the
// client (operation 1).
func (l *Localizer) Servers(clientIP string) (topology.ServerPair, error) {
	if l.TopologyDB == nil {
		return topology.ServerPair{}, ErrNoTopology
	}
	entry, ok := l.TopologyDB.Lookup(clientIP)
	if !ok || len(entry.Pairs) == 0 {
		return topology.ServerPair{}, fmt.Errorf("%w: %s", ErrNoTopology, clientIP)
	}
	return entry.Pairs[0], nil
}

// TDiff returns the T_diff distribution for a client/app/carrier from the
// configured history (empty when no history is configured).
func (l *Localizer) TDiff(client, app, carrier string) []float64 {
	if l.History == nil {
		return nil
	}
	return l.History.TDiff(client, app, carrier)
}

// Localize performs operations 2–4 over the given session, using tdiff as
// the historical throughput-variation distribution (may be nil).
func (l *Localizer) Localize(session ReplaySession, tdiff []float64) (Verdict, error) {
	if l.Rand == nil {
		return Verdict{}, errors.New("wehey: Localizer.Rand is required")
	}
	var v Verdict

	// Operation 2a: single replays on p0 (WeHe detection).
	origSingle, err := session.SingleReplay(true)
	if err != nil {
		return v, fmt.Errorf("wehey: single original replay: %w", err)
	}
	invSingle, err := session.SingleReplay(false)
	if err != nil {
		return v, fmt.Errorf("wehey: single bit-inverted replay: %w", err)
	}
	det, err := wehe.DetectDifferentiation(origSingle.Throughput, invSingle.Throughput, l.Detection)
	if err != nil {
		return v, fmt.Errorf("wehey: WeHe detection: %w", err)
	}
	v.WeHeDetected = det.Differentiation
	v.X = origSingle.Throughput.Samples
	if !v.WeHeDetected {
		return v, nil
	}

	// Operation 2b: simultaneous replays on p1, p2.
	origSim, err := session.SimultaneousReplay(true)
	if err != nil {
		return v, fmt.Errorf("wehey: simultaneous original replay: %w", err)
	}
	invSim, err := session.SimultaneousReplay(false)
	if err != nil {
		return v, fmt.Errorf("wehey: simultaneous bit-inverted replay: %w", err)
	}

	// Operation 2c (§3.4 step 4): post-replay topology verification.
	if tv, ok := session.(TopologyVerifier); ok {
		suitable, err := tv.VerifyTopology()
		if err != nil {
			return v, fmt.Errorf("wehey: topology verification: %w", err)
		}
		if !suitable {
			return Verdict{WeHeDetected: v.WeHeDetected}, ErrTopologyChanged
		}
	}

	// Operation 3: differentiation confirmation on both paths.
	v.Confirmed = true
	for i := 0; i < 2; i++ {
		d, err := wehe.DetectDifferentiation(origSim[i].Throughput, invSim[i].Throughput, l.Detection)
		if err != nil || !d.Differentiation {
			v.Confirmed = false
		}
	}
	v.Y = measure.SumSamples(origSim[0].Throughput.Samples, origSim[1].Throughput.Samples)
	if !v.Confirmed {
		return v, nil
	}

	// Operation 4: common-bottleneck detection.
	in := core.DetectorInput{X: v.X, Y: v.Y, TDiff: tdiff}
	if origSim[0].Measurements != nil && origSim[1].Measurements != nil {
		in.M1 = origSim[0].Measurements
		in.M2 = origSim[1].Measurements
	}
	out, err := core.DetectCommonBottleneck(l.Rand, in, l.Detector)
	if err != nil {
		return v, fmt.Errorf("wehey: common-bottleneck detection: %w", err)
	}
	v.Detail = out
	v.Evidence = out.Evidence
	v.LocalizedToISP = out.Evidence.Found()
	return v, nil
}
