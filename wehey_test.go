package wehey

import (
	"math/rand"
	"testing"
	"time"

	"github.com/nal-epfl/wehey/internal/core"
	"github.com/nal-epfl/wehey/internal/isp"
	"github.com/nal-epfl/wehey/internal/topology"
	"github.com/nal-epfl/wehey/internal/wehe"
)

func testLocalizer(rng *rand.Rand) *Localizer {
	return &Localizer{
		Rand:    rng,
		History: wehe.SynthHistory(rng, wehe.SynthHistorySpec{Clients: 15, TestsPerClient: 9, Spread: 0.15}),
	}
}

func TestLocalizePerClientThrottling(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := testLocalizer(rng)
	tdiff := l.TDiff("", "netflix", "carrier-1")
	session := NewSimSession(rng, isp.FiveISPs()[0], 20*time.Second)
	v, err := l.Localize(session, tdiff)
	if err != nil {
		t.Fatal(err)
	}
	if !v.WeHeDetected {
		t.Fatal("WeHe missed clear differentiation")
	}
	if !v.Confirmed {
		t.Fatal("differentiation not confirmed on both paths")
	}
	if !v.LocalizedToISP {
		t.Fatalf("not localized: %s", v)
	}
	if v.Evidence != core.EvidencePerClient {
		t.Errorf("evidence = %v, want per-client", v.Evidence)
	}
	if v.String() == "" {
		t.Error("empty verdict string")
	}
}

func TestLocalizeCollectiveThrottling(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := testLocalizer(rng)
	tdiff := l.TDiff("", "netflix", "carrier-1")
	session := NewCollectiveSimSession(rng, CollectiveConfig{
		InputFactor: 1.5,
		Duration:    30 * time.Second,
	})
	v, err := l.Localize(session, tdiff)
	if err != nil {
		t.Fatal(err)
	}
	if !v.WeHeDetected {
		t.Fatal("WeHe missed collective throttling")
	}
	if !v.LocalizedToISP {
		t.Fatalf("not localized: %s", v)
	}
	if v.Evidence != core.EvidenceShared {
		t.Errorf("evidence = %v, want shared (loss-trend correlation)", v.Evidence)
	}
}

func TestLocalizeNeutralNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := testLocalizer(rng)
	// A profile whose "plan rate" never binds (plan ≥ app rate): WeHe must
	// find nothing and localization must stop after phase 1.
	p := isp.Profile{
		Name: "neutral", PlanRate: 50e6, RTT: 40 * time.Millisecond,
		UnthrottledRate: 8e6, LinkRate: 60e6,
	}
	session := NewSimSession(rng, p, 15*time.Second)
	v, err := l.Localize(session, l.TDiff("", "netflix", "carrier-1"))
	if err != nil {
		t.Fatal(err)
	}
	if v.WeHeDetected {
		t.Error("WeHe detected differentiation on a neutral network")
	}
	if v.LocalizedToISP {
		t.Error("localized on a neutral network")
	}
}

func TestLocalizerServers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := topology.Synthesize(rng, topology.SynthSpec{ISPs: 4, ClientsPerISP: 10})
	kept, _ := topology.AnnotateAll(net.Raws, net.Annotations)
	db := topology.Construct(kept)
	l := &Localizer{Rand: rng, TopologyDB: db}

	// Find a client with a suitable topology.
	found := false
	for _, c := range net.Clients {
		if pair, err := l.Servers(c.IP); err == nil {
			found = true
			if pair.Server1 == pair.Server2 || pair.Server1 == "" {
				t.Fatalf("degenerate pair %+v", pair)
			}
			break
		}
	}
	if !found {
		t.Fatal("no client had a suitable topology")
	}
	if _, err := l.Servers("203.0.113.99"); err == nil {
		t.Error("unknown client resolved")
	}
	noDB := &Localizer{Rand: rng}
	if _, err := noDB.Servers("100.64.0.1"); err == nil {
		t.Error("nil DB resolved")
	}
}

func TestLocalizerRequiresRand(t *testing.T) {
	l := &Localizer{}
	if _, err := l.Localize(nil, nil); err == nil {
		t.Error("nil Rand accepted")
	}
}

func TestLocalizeWithoutTDiffFallsBackToLossTrend(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := &Localizer{Rand: rng}
	session := NewCollectiveSimSession(rng, CollectiveConfig{Duration: 30 * time.Second})
	v, err := l.Localize(session, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Detail.Throughput != nil {
		t.Error("throughput comparison ran without T_diff")
	}
	if !v.LocalizedToISP || v.Evidence != core.EvidenceShared {
		t.Errorf("loss-trend fallback failed: %s", v)
	}
}

// verifyingSession wraps a ReplaySession with a canned topology verdict.
type verifyingSession struct {
	ReplaySession
	suitable bool
	err      error
}

func (s *verifyingSession) VerifyTopology() (bool, error) { return s.suitable, s.err }

func TestLocalizeTopologyVerification(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := testLocalizer(rng)
	tdiff := l.TDiff("", "netflix", "carrier-1")
	base := NewSimSession(rng, isp.FiveISPs()[0], 15*time.Second)

	// A route change mid-test discards the measurements.
	_, err := l.Localize(&verifyingSession{ReplaySession: base, suitable: false}, tdiff)
	if err != ErrTopologyChanged {
		t.Errorf("err = %v, want ErrTopologyChanged", err)
	}

	// A still-suitable topology proceeds to a verdict.
	v, err := l.Localize(&verifyingSession{ReplaySession: base, suitable: true}, tdiff)
	if err != nil {
		t.Fatal(err)
	}
	if !v.LocalizedToISP {
		t.Errorf("verified session should localize: %s", v)
	}

	// Verification errors propagate.
	if _, err := l.Localize(&verifyingSession{ReplaySession: base, err: ErrNoTopology}, tdiff); err == nil {
		t.Error("verification error swallowed")
	}
}

func TestLocalizeCollectiveUDP(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	l := testLocalizer(rng)
	session := NewCollectiveSimSession(rng, CollectiveConfig{
		App:      "zoom",
		Duration: 30 * time.Second,
	})
	v, err := l.Localize(session, l.TDiff("", "netflix", "carrier-1"))
	if err != nil {
		t.Fatal(err)
	}
	if !v.WeHeDetected {
		t.Fatal("WeHe missed UDP collective throttling")
	}
	if !v.LocalizedToISP || v.Evidence != core.EvidenceShared {
		t.Fatalf("UDP collective not localized: %s", v)
	}
}
