package wehey_test

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/nal-epfl/wehey"
	"github.com/nal-epfl/wehey/internal/isp"
	"github.com/nal-epfl/wehey/internal/wehe"
)

// Localize a per-client throttler on the simulator: the canonical WeHeY
// flow — WeHe detection, simultaneous replays, confirmation, and the
// common-bottleneck verdict.
func ExampleLocalizer_Localize() {
	rng := rand.New(rand.NewSource(42))
	history := wehe.SynthHistory(rng, wehe.SynthHistorySpec{
		Clients: 15, TestsPerClient: 9, Spread: 0.15,
	})
	localizer := &wehey.Localizer{Rand: rng, History: history}
	session := wehey.NewSimSession(rng, isp.FiveISPs()[0], 20*time.Second)

	verdict, err := localizer.Localize(session, localizer.TDiff("", "netflix", "carrier-1"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("detected:", verdict.WeHeDetected)
	fmt.Println("localized:", verdict.LocalizedToISP)
	fmt.Println("evidence:", verdict.Evidence)
	// Output:
	// detected: true
	// localized: true
	// evidence: per-client bottleneck
}
