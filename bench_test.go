package wehey

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the DESIGN.md ablations. Each iteration regenerates the
// corresponding result at a reduced trial count (use
// cmd/wehey-experiments -full for paper-scale runs) and reports the
// experiment's headline quantity as a custom metric so regressions in the
// *result shape* — not just the runtime — are visible in benchmark diffs.
//
// Run: go test -bench=. -benchmem

import (
	"flag"
	"io"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/nal-epfl/wehey/internal/experiments"
)

// benchWorkers widens the experiment worker pool, e.g.
// go test -bench=. -workers=8. The reported result metrics are identical
// for any width; only the wall clock changes.
var benchWorkers = flag.Int("workers", 0, "experiment worker-pool width (0 = GOMAXPROCS)")

// benchCache shares one simulation cache across every benchmark in the
// process (and, with -cache-dir, across processes), e.g.
// go test -bench=. -cache. Result metrics are identical either way —
// cached results are bit-for-bit recomputed results — but each benchmark
// then also reports its cache-hits/cache-misses deltas, which
// cmd/wehey-bench snapshots alongside ns/op.
var (
	benchCache    = flag.Bool("cache", false, "share a simulation cache across benchmarks and report hit/miss metrics")
	benchCacheDir = flag.String("cache-dir", "", "persist the shared simulation cache under this directory (implies -cache)")

	sharedCacheOnce sync.Once
	sharedCache     *experiments.SimCache
)

func benchSimCache(b *testing.B) *experiments.SimCache {
	sharedCacheOnce.Do(func() {
		if *benchCacheDir != "" {
			var err error
			if sharedCache, err = experiments.NewDiskSimCache(*benchCacheDir); err != nil {
				b.Fatalf("cache-dir: %v", err)
			}
			return
		}
		if *benchCache {
			sharedCache = experiments.NewSimCache()
		}
	})
	return sharedCache
}

// reportCacheMetrics snapshots the shared cache's counters; the returned
// closure (run deferred, after the benchmark body) reports the deltas as
// custom metrics. A no-op when caching is off, so BENCH snapshots taken
// without -cache carry no cache keys.
func reportCacheMetrics(b *testing.B) func() {
	cache := benchSimCache(b)
	if cache == nil {
		return func() {}
	}
	start := cache.Stats()
	return func() {
		end := cache.Stats()
		b.ReportMetric(float64(end.Hits-start.Hits)/float64(b.N), "cache-hits")
		b.ReportMetric(float64(end.DiskHits-start.DiskHits)/float64(b.N), "cache-disk-hits")
		b.ReportMetric(float64(end.Misses-start.Misses)/float64(b.N), "cache-misses")
	}
}

// benchCfg keeps iterations fast; the generators default their own trial
// counts from this.
func benchCfg() experiments.Config {
	return experiments.Config{Trials: 2, Seed: 1, Workers: *benchWorkers, Cache: sharedCache}
}

// parsePct extracts a numeric percentage like "89.8%" from a table cell.
func parsePct(cell string) (float64, bool) {
	s := strings.TrimSuffix(strings.TrimSpace(cell), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// avgPctRow averages the numeric percentage cells of a row (skipping the
// label column).
func avgPctRow(row []string) float64 {
	var sum float64
	var n int
	for _, c := range row[1:] {
		if v, ok := parsePct(c); ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func renderAndDiscard(r *experiments.Report) {
	r.Render(io.Discard)
}

func BenchmarkTable1(b *testing.B) {
	defer reportCacheMetrics(b)()
	for i := 0; i < b.N; i++ {
		r := experiments.Table1(benchCfg())
		renderAndDiscard(r)
		if len(r.Tables) > 0 && len(r.Tables[0].Rows) > 0 {
			row := r.Tables[0].Rows[0] // localization rate per ISP
			if v, ok := parsePct(row[1]); ok {
				b.ReportMetric(v, "ISP1-localized-%")
			}
			if v, ok := parsePct(row[len(row)-1]); ok {
				b.ReportMetric(v, "ISP5-localized-%")
			}
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	defer reportCacheMetrics(b)()
	for i := 0; i < b.N; i++ {
		renderAndDiscard(experiments.Table2(benchCfg()))
	}
}

func BenchmarkTable3(b *testing.B) {
	defer reportCacheMetrics(b)()
	for i := 0; i < b.N; i++ {
		r := experiments.Table3(benchCfg())
		renderAndDiscard(r)
		if len(r.Tables) > 0 && len(r.Tables[0].Rows) > 0 {
			row := r.Tables[0].Rows[0] // TCP FN per RTT2
			if v, ok := parsePct(row[len(row)-1]); ok {
				b.ReportMetric(v, "TCP-FN-at-120ms-%")
			}
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	defer reportCacheMetrics(b)()
	for i := 0; i < b.N; i++ {
		r := experiments.Table4(benchCfg())
		renderAndDiscard(r)
		if len(r.Tables) > 0 && len(r.Tables[0].Rows) > 0 {
			if v, ok := parsePct(r.Tables[0].Rows[0][len(r.Tables[0].Rows[0])-1]); ok {
				b.ReportMetric(v, "UDP-FN-at-1.15-%")
			}
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	defer reportCacheMetrics(b)()
	for i := 0; i < b.N; i++ {
		r := experiments.Table5(benchCfg())
		renderAndDiscard(r)
		if len(r.Tables) > 0 && len(r.Tables[0].Rows) > 0 {
			b.ReportMetric(avgPctRow(append([]string{""}, r.Tables[0].Rows[0]...)), "avg-FP-%")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	defer reportCacheMetrics(b)()
	for i := 0; i < b.N; i++ {
		renderAndDiscard(experiments.Figure2(benchCfg()))
	}
}

func BenchmarkFigure3(b *testing.B) {
	defer reportCacheMetrics(b)()
	for i := 0; i < b.N; i++ {
		renderAndDiscard(experiments.Figure3(benchCfg()))
	}
}

func BenchmarkFigure4(b *testing.B) {
	defer reportCacheMetrics(b)()
	for i := 0; i < b.N; i++ {
		renderAndDiscard(experiments.Figure4(benchCfg()))
	}
}

func BenchmarkFigure5(b *testing.B) {
	defer reportCacheMetrics(b)()
	for i := 0; i < b.N; i++ {
		renderAndDiscard(experiments.Figure5(benchCfg()))
	}
}

func BenchmarkFigure6(b *testing.B) {
	defer reportCacheMetrics(b)()
	cfg := benchCfg()
	cfg.Trials = 1
	for i := 0; i < b.N; i++ {
		r := experiments.Figure6(cfg)
		renderAndDiscard(r)
		// Row 0 is tcpbulk/modified: FN of loss-trend then classic.
		if len(r.Tables) > 0 && len(r.Tables[0].Rows) > 0 {
			row := r.Tables[0].Rows[0]
			if v, ok := parsePct(row[2]); ok {
				b.ReportMetric(v, "TCP-FN-losstrend-%")
			}
			if v, ok := parsePct(row[3]); ok {
				b.ReportMetric(v, "TCP-FN-classic-%")
			}
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	defer reportCacheMetrics(b)()
	for i := 0; i < b.N; i++ {
		renderAndDiscard(experiments.Figure7(benchCfg()))
	}
}

func BenchmarkTopologyYield(b *testing.B) {
	defer reportCacheMetrics(b)()
	for i := 0; i < b.N; i++ {
		renderAndDiscard(experiments.TopologyYield(benchCfg()))
	}
}

func BenchmarkAblationCorrelation(b *testing.B) {
	defer reportCacheMetrics(b)()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		renderAndDiscard(experiments.AblationCorrelation(cfg))
	}
}

func BenchmarkAblationIntervals(b *testing.B) {
	defer reportCacheMetrics(b)()
	for i := 0; i < b.N; i++ {
		renderAndDiscard(experiments.AblationIntervals(benchCfg()))
	}
}

func BenchmarkAblationVote(b *testing.B) {
	defer reportCacheMetrics(b)()
	for i := 0; i < b.N; i++ {
		renderAndDiscard(experiments.AblationVote(benchCfg()))
	}
}

func BenchmarkAblationMWU(b *testing.B) {
	defer reportCacheMetrics(b)()
	cfg := benchCfg()
	cfg.Duration = 10 * time.Second
	for i := 0; i < b.N; i++ {
		renderAndDiscard(experiments.AblationMWU(cfg))
	}
}

func BenchmarkAblationPacing(b *testing.B) {
	defer reportCacheMetrics(b)()
	cfg := benchCfg()
	cfg.Trials = 1
	for i := 0; i < b.N; i++ {
		renderAndDiscard(experiments.AblationPacing(cfg))
	}
}

// parseReduction extracts the headline factor from the ablation-scale note
// "fluid background reduces simulated background events <N>x at full rate".
func parseReduction(note string) (float64, bool) {
	const marker = "reduces simulated background events "
	i := strings.Index(note, marker)
	if i < 0 {
		return 0, false
	}
	rest := note[i+len(marker):]
	j := strings.IndexByte(rest, 'x')
	if j < 0 {
		return 0, false
	}
	v, err := strconv.ParseFloat(rest[:j], 64)
	return v, err == nil
}

func BenchmarkAblationScale(b *testing.B) {
	defer reportCacheMetrics(b)()
	cfg := benchCfg()
	cfg.Trials = 1
	cfg.Duration = 12 * time.Second
	for i := 0; i < b.N; i++ {
		r := experiments.AblationScale(cfg)
		renderAndDiscard(r)
		if len(r.Tables) > 0 && len(r.Tables[0].Rows) == 3 {
			rows := r.Tables[0].Rows
			if v, err := strconv.ParseFloat(rows[0][1], 64); err == nil {
				b.ReportMetric(v, "packet32-events")
			}
			if v, err := strconv.ParseFloat(rows[2][2], 64); err == nil {
				b.ReportMetric(v, "fluid168-bg-events")
			}
			if v, err := strconv.ParseFloat(rows[2][3], 64); err == nil {
				b.ReportMetric(v, "peak-bg-flows")
			}
		}
		for _, n := range r.Notes {
			if v, ok := parseReduction(n); ok {
				b.ReportMetric(v, "bg-event-reduction-x")
			}
		}
	}
}

func BenchmarkExtensionPerFlow(b *testing.B) {
	defer reportCacheMetrics(b)()
	cfg := benchCfg() // default 30 s replays: the anti-correlation needs them
	for i := 0; i < b.N; i++ {
		r := experiments.ExtensionPerFlow(cfg)
		renderAndDiscard(r)
		if len(r.Tables) > 0 && len(r.Tables[0].Rows) >= 2 {
			if v, ok := parsePct(r.Tables[0].Rows[1][2]); ok {
				b.ReportMetric(v, "merged-sharedfate-%")
			}
		}
	}
}

func BenchmarkExtensionBBR(b *testing.B) {
	defer reportCacheMetrics(b)()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		r := experiments.ExtensionBBR(cfg)
		renderAndDiscard(r)
		if len(r.Tables) > 0 && len(r.Tables[0].Rows) >= 2 {
			if v, ok := parsePct(r.Tables[0].Rows[1][1]); ok {
				b.ReportMetric(v, "BBR-FN-scenario-detect-%")
			}
		}
	}
}
