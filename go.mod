module github.com/nal-epfl/wehey

go 1.22
