// Topology construction walk-through (§3.3): ingest traceroute records
// annotated with per-hop ASNs, filter out the unusable ones (ICMP
// filtering, IP aliasing, truncation), and build the topology database
// mapping each client prefix to server pairs whose paths converge inside
// the client's ISP.
//
// Run: go run ./examples/topology
package main

import (
	"fmt"
	"math/rand"

	"github.com/nal-epfl/wehey/internal/topology"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// A month of traceroutes over a synthetic Internet: 12 access ISPs,
	// 8 M-Lab-style server sites behind 4 transit ASes.
	net := topology.Synthesize(rng, topology.SynthSpec{})
	fmt.Printf("synthesized %d traceroutes to %d clients\n", len(net.Raws), len(net.Clients))

	// Merge with the annotation table and apply the §3.3 filters.
	kept, discarded := topology.AnnotateAll(net.Raws, net.Annotations)
	fmt.Printf("filters kept %d traceroutes, discarded %d (ICMP filtering, aliasing, truncation)\n",
		len(kept), discarded)

	// Run the TC algorithm.
	db := topology.Construct(kept)
	fmt.Printf("topology DB: %d client prefixes with suitable server pairs\n\n", db.Len())

	// Per-client yield — the paper's §3.3 statistics.
	clients := make([]string, len(net.Clients))
	for i, c := range net.Clients {
		clients[i] = c.IP
	}
	stats, _ := topology.Yield(net.Raws, net.Annotations, clients)
	fmt.Printf("clients with ≥1 complete traceroute: %.1f%% (paper: 52%%)\n", 100*stats.CompleteFraction())
	fmt.Printf("of those, with ≥1 suitable topology: %.1f%% (paper: 74%%)\n\n", 100*stats.SuitableFraction())

	// What a client sees when it asks for servers.
	for _, c := range net.Clients {
		entry, ok := db.Lookup(c.IP)
		if !ok || len(entry.Pairs) == 0 {
			continue
		}
		p := entry.Pairs[0]
		fmt.Printf("client %s (ISP AS%d) can run a localization test using servers %s + %s\n",
			c.IP, entry.ASN, p.Server1, p.Server2)
		fmt.Printf("their paths converge at %s — inside the client's ISP by construction\n", p.ConvergeIP)
		break
	}
}
