// Quickstart: localize traffic differentiation on an emulated cellular ISP
// that throttles video traffic with a per-client policer.
//
// The flow mirrors a real WeHeY user test (§3.1 of the paper):
//
//  1. WeHe replays the original and bit-inverted traces on p0 and detects
//     differentiation (the original is throttled, the control is not);
//  2. two servers replay simultaneously on paths p1, p2 that converge
//     inside the ISP;
//  3. both paths re-confirm the differentiation;
//  4. the common-bottleneck detector finds that the aggregate simultaneous
//     throughput matches the single-replay throughput — a dedicated
//     per-client bottleneck — so the differentiation is localized to the
//     client's ISP.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/nal-epfl/wehey"
	"github.com/nal-epfl/wehey/internal/isp"
	"github.com/nal-epfl/wehey/internal/wehe"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// Historical WeHe tests provide T_diff — what "normal" throughput
	// variation looks like for this client population.
	history := wehe.SynthHistory(rng, wehe.SynthHistorySpec{
		Clients: 15, TestsPerClient: 9, Spread: 0.15,
	})

	localizer := &wehey.Localizer{Rand: rng, History: history}
	tdiff := localizer.TDiff("", "netflix", "carrier-1")

	// ISP1: an always-on per-client policer at the plan rate (4 Mbit/s,
	// "video at DVD quality").
	profile := isp.FiveISPs()[0]
	fmt.Printf("testing against %s: plan rate %.1f Mbit/s, unthrottled %.1f Mbit/s\n\n",
		profile.Name, profile.PlanRate/1e6, profile.UnthrottledRate/1e6)

	session := wehey.NewSimSession(rng, profile, 20*time.Second)
	verdict, err := localizer.Localize(session, tdiff)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("WeHe detected differentiation:", verdict.WeHeDetected)
	fmt.Println("confirmed on both paths:      ", verdict.Confirmed)
	fmt.Println("evidence:                     ", verdict.Evidence)
	fmt.Println()
	fmt.Println(verdict)
}
