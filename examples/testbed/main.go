// Real-socket testbed run: replays a video trace over actual UDP sockets
// through an in-process middlebox that applies DPI classification and a
// token-bucket policer — the loopback stand-in for the paper's wide-area
// testbed (§6.2). The original (SNI-bearing) replay gets throttled; the
// bit-inverted control does not; WeHe's KS detector flags the difference.
//
// Run: go run ./examples/testbed
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/nal-epfl/wehey/internal/testbed"
	"github.com/nal-epfl/wehey/internal/trace"
	"github.com/nal-epfl/wehey/internal/wehe"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	tr, err := trace.Generate("netflix", rng, 6*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	inv := trace.BitInvert(tr)

	// The differentiation device: 5 ms one-way delay, DPI matching the
	// Netflix SNI, a 2 Mbit/s policer on matched flows.
	mb := testbed.NewMiddlebox(testbed.MiddleboxConfig{
		Delay: 5 * time.Millisecond,
		SNIs:  testbed.SNIsForApps("netflix"),
		Rate:  2e6,
		Burst: 8000,
	})
	defer mb.Close()

	const dur = 3 * time.Second
	fmt.Println("replaying the original trace (SNI visible to DPI)...")
	orig, err := testbed.RunReliableReplay(context.Background(), mb, "orig", tr, dur, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("replaying the bit-inverted control (no matchable SNI)...")
	ctrl, err := testbed.RunReliableReplay(context.Background(), mb, "inv", inv, dur, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nDPI matched original: %v; matched control: %v\n",
		mb.FlowMatched("orig"), mb.FlowMatched("inv"))
	fmt.Printf("original:     %6.2f Mbit/s, retransmission rate %.1f%%, %d loss events\n",
		orig.Throughput.Mean()/1e6, orig.RetransRate*100, len(orig.Measurements.Loss))
	fmt.Printf("bit-inverted: %6.2f Mbit/s, retransmission rate %.1f%%\n",
		ctrl.Throughput.Mean()/1e6, ctrl.RetransRate*100)

	det, err := wehe.DetectDifferentiation(orig.Throughput, ctrl.Throughput, wehe.DetectionConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWeHe verdict: differentiation = %v (KS p = %.3g, relative diff %.0f%%)\n",
		det.Differentiation, det.KS.P, det.RelDiff*100)
}
