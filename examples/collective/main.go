// Collective throttling: the ISP rate-limits a service for *all* its
// users with one shared policer. The client's replays now share the
// bottleneck with other users' traffic, so the aggregate simultaneous
// throughput does not add up to the single-replay throughput and the
// throughput comparison finds nothing — this is the case WeHeY's
// loss-trend correlation algorithm (Alg. 1) exists for: the two paths'
// loss rates rise and fall together with the shared bottleneck's load.
//
// Run: go run ./examples/collective
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/nal-epfl/wehey"
	"github.com/nal-epfl/wehey/internal/wehe"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	history := wehe.SynthHistory(rng, wehe.SynthHistorySpec{
		Clients: 15, TestsPerClient: 9, Spread: 0.15,
	})
	localizer := &wehey.Localizer{Rand: rng, History: history}
	tdiff := localizer.TDiff("", "netflix", "carrier-1")

	session := wehey.NewCollectiveSimSession(rng, wehey.CollectiveConfig{
		InputFactor: 1.5,              // offered load is 1.5x the collective rate
		Duration:    45 * time.Second, // the paper's minimum replay length
	})

	fmt.Println("scenario: collective per-service throttling (other users share the limiter)")
	verdict, err := localizer.Localize(session, tdiff)
	if err != nil {
		log.Fatal(err)
	}

	if tc := verdict.Detail.Throughput; tc != nil {
		fmt.Printf("\nthroughput comparison: p = %.3g → common bottleneck = %v\n", tc.P, tc.CommonBottleneck)
		fmt.Println("(expected to fail: the replays share the bottleneck with unknown traffic)")
	}
	if lt := verdict.Detail.LossTrend; lt != nil {
		fmt.Printf("\nloss-trend correlation: %d/%d interval sizes significantly correlated\n",
			lt.Correlations, lt.Sizes)
		for _, v := range lt.PerSize {
			marker := " "
			if v.Correlated {
				marker = "*"
			}
			fmt.Printf("  %s σ=%-8v intervals=%-4d ρ=%+.3f p=%.4f\n",
				marker, v.Sigma, v.Intervals, v.Rho, v.P)
		}
	}
	fmt.Println()
	fmt.Println(verdict)
}
