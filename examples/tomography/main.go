// Why classic binary-loss tomography fails here — the §4.3 story.
//
// Two TCP flows share a rate limiter (a genuine common bottleneck).
// BinLossTomo infers each link sequence's performance from a loss
// threshold τ: for "good" thresholds the common link correctly looks worst,
// but as τ approaches the true average loss rate the two paths' rates fall
// on opposite sides of it and the inference collapses (Figure 3b). The
// loss-trend correlation needs no threshold at all and detects the shared
// bottleneck from rank co-movement alone.
//
// Run: go run ./examples/tomography
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/nal-epfl/wehey/internal/core"
	"github.com/nal-epfl/wehey/internal/experiments"
	"github.com/nal-epfl/wehey/internal/tomo"
)

func main() {
	// One §6.2-style simultaneous replay with the limiter on the common
	// link (the FN topology: a common bottleneck exists by construction).
	res := experiments.RunSim(experiments.SimSpec{
		App:         experiments.TCPBulkApp,
		InputFactor: 1.5,
		BgShare:     0.5,
		Duration:    30 * time.Second,
		Seed:        3,
	})
	avgLoss := (res.M1.LossRate() + res.M2.LossRate()) / 2
	fmt.Printf("measured average loss rate: %.3f\n\n", avgLoss)

	// Binary tomography across thresholds: watch x_c and x_1 converge as
	// τ approaches the true loss rate.
	sigma := 600 * time.Millisecond
	fmt.Println("BinLossTomo (Alg. 2) inferred performance vs threshold τ:")
	fmt.Println("τ        x_c      x_1      x_2      verdict(Alg. 3)")
	for _, mult := range []float64{0.25, 0.5, 0.75, 1.0, 1.25} {
		tau := avgLoss * mult
		perf, ok := tomo.BinLossTomo(&res.M1, &res.M2, sigma, tau)
		if !ok {
			fmt.Printf("%.4f   (inference degenerate)\n", tau)
			continue
		}
		verdict := tomo.BinLossTomoPlus(&res.M1, &res.M2, sigma, tau)
		fmt.Printf("%.4f   %.3f    %.3f    %.3f    common=%v\n",
			tau, perf.Xc, perf.X1, perf.X2, verdict)
	}

	// The parameter-free baseline (Alg. 4) and WeHeY's final algorithm.
	np := tomo.BinLossTomoNoParams(&res.M1, &res.M2, tomo.NoParamsConfig{})
	fmt.Printf("\nBinLossTomoNoParams (Alg. 4): common=%v (avg gaps %.3f / %.3f over %d combos)\n",
		np.CommonBottleneck, np.AvgGap1, np.AvgGap2, np.Combos)

	tt := tomo.TrendTomo(&res.M1, &res.M2, tomo.NoParamsConfig{})
	fmt.Printf("TrendTomo (V2):               common=%v\n", tt.CommonBottleneck)

	lt, err := core.LossTrendCorrelation(&res.M1, &res.M2, core.LossTrendConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LossTrendCorrelation (Alg. 1): common=%v (%d/%d interval sizes correlated)\n",
		lt.CommonBottleneck, lt.Correlations, lt.Sizes)
}
