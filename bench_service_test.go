package wehey_test

// Control-plane load harness: the service benchmark family measures the
// campaign scheduler's own throughput with the measurement cost zeroed
// out by the null backend. ServiceSubmit isolates the admission+journal
// path and reports jobs/s for the per-record-fsync baseline and the
// group-commit batch path side by side — their ratio is the headline
// number BENCH_9.json is committed to hold. ServiceSustained runs the
// full submit→schedule→execute→journal loop and adds p99 submit latency.
//
// Run: go test -bench Service -benchtime 2s

import (
	"fmt"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"github.com/nal-epfl/wehey/internal/service"
)

// submitBatchSize is the batch the load harness submits per operation —
// also the per-iteration job count of the sequential baseline, so both
// sub-benchmarks do identical work per iteration and differ only in how
// it reaches the journal.
const submitBatchSize = 256

func benchScheduler(b *testing.B, journal bool) *service.Scheduler {
	b.Helper()
	opts := service.Options{
		Workers:    8,
		QueueLimit: 1 << 30, // admission control off: this measures throughput, not shedding
		Backends:   map[string]service.Backend{service.BackendNull: service.NullBackend{}},
	}
	if journal {
		opts.JournalPath = filepath.Join(b.TempDir(), "journal.wj")
	}
	s, err := service.NewScheduler(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	return s
}

func nullSpecs(n int, seed int64) []service.Spec {
	specs := make([]service.Spec, n)
	for i := range specs {
		specs[i] = service.Spec{Backend: service.BackendNull, Seed: seed + int64(i)}
	}
	return specs
}

// BenchmarkServiceSubmit measures the admission+journal path alone (the
// scheduler is never started, so no execution interferes). Each
// iteration admits submitBatchSize jobs; the sub-benchmarks differ only
// in fsync amortization:
//
//	fsync-per-record: sequential Submit calls — every record pays its
//	                  own group commit (the pre-batching baseline).
//	group-commit:     one SubmitBatch call — the whole batch rides one
//	                  write+fsync.
func BenchmarkServiceSubmit(b *testing.B) {
	b.Run("fsync-per-record", func(b *testing.B) {
		s := benchScheduler(b, true)
		var seed int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < submitBatchSize; k++ {
				if _, err := s.Submit(service.Spec{Backend: service.BackendNull, Seed: seed}); err != nil {
					b.Fatal(err)
				}
				seed++
			}
		}
		b.StopTimer()
		reportJobsPerSec(b, submitBatchSize)
	})
	b.Run("group-commit", func(b *testing.B) {
		s := benchScheduler(b, true)
		var seed int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.SubmitBatch(nullSpecs(submitBatchSize, seed)); err != nil {
				b.Fatal(err)
			}
			seed += submitBatchSize
		}
		b.StopTimer()
		reportJobsPerSec(b, submitBatchSize)
	})
}

// BenchmarkServiceSustained runs the whole control plane: batched
// submissions against a started scheduler with the null backend, every
// job journaled twice (submit + terminal) and executed by the worker
// pool. Reported metrics: end-to-end jobs/s (the drain is inside the
// timed region) and the p99 latency of the submit call itself.
func BenchmarkServiceSustained(b *testing.B) {
	s := benchScheduler(b, true)
	s.Start()
	var seed int64
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := s.SubmitBatch(nullSpecs(submitBatchSize, seed)); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(t0))
		seed += submitBatchSize
	}
	// Drain: the throughput number covers completion, not just admission.
	total := int64(b.N) * submitBatchSize
	for {
		m := s.Metrics()
		if m.Done >= total {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.StopTimer()
	reportJobsPerSec(b, submitBatchSize)
	sort.Slice(lat, func(i, k int) bool { return lat[i] < lat[k] })
	p99 := lat[len(lat)*99/100]
	b.ReportMetric(float64(p99.Nanoseconds())/1e6, "p99-submit-ms")
	if m := s.Metrics(); m.JournalBatchCommits > 0 {
		b.ReportMetric(float64(m.JournalBatchRecords)/float64(m.JournalBatchCommits), "records/commit")
	}
}

func reportJobsPerSec(b *testing.B, perOp int) {
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*perOp)/elapsed, "jobs/s")
	}
}

// BenchmarkServiceStatusBatch measures the read side at depth: a 10k-job
// campaign snapshotted through GetBatch in pages of 256 (the lock-free
// metrics path and per-shard snapshot locks are what's under test).
func BenchmarkServiceStatusBatch(b *testing.B) {
	s := benchScheduler(b, false)
	jobs, err := s.SubmitBatch(nullSpecs(10000, 0))
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]string, submitBatchSize)
	for i := range ids {
		ids[i] = jobs[i*len(jobs)/len(ids)].ID
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, missing := s.GetBatch(ids)
		if len(got) != len(ids) || len(missing) != 0 {
			b.Fatalf("got %d jobs, %d missing", len(got), len(missing))
		}
		_ = fmt.Sprintf("%d", len(got)) // keep the snapshot from being optimized away
	}
}
