package wehey

import (
	"math/rand"
	"time"

	"github.com/nal-epfl/wehey/internal/isp"
	"github.com/nal-epfl/wehey/internal/measure"
	"github.com/nal-epfl/wehey/internal/netsim"
	"github.com/nal-epfl/wehey/internal/trace"
)

// SimSession is a ReplaySession backed by the discrete-event simulator and
// an ISP throttling profile (per-client throttling, the §5 scenario). Each
// replay runs in a fresh simulation, as the real system's sequential
// replays would.
type SimSession struct {
	Profile  isp.Profile
	Duration time.Duration
	rng      *rand.Rand
	trig     *isp.Trigger
}

// NewSimSession creates a session against the given profile. The
// conditional-throttling criterion (if the profile has one) is drawn once
// per session, as it would be fixed during one user test.
func NewSimSession(rng *rand.Rand, profile isp.Profile, duration time.Duration) *SimSession {
	if duration <= 0 {
		duration = 20 * time.Second
	}
	return &SimSession{
		Profile:  profile,
		Duration: duration,
		rng:      rng,
		trig:     profile.DrawTrigger(rng),
	}
}

// SingleReplay implements ReplaySession.
func (s *SimSession) SingleReplay(original bool) (PathReplay, error) {
	out := s.Profile.Replays(s.rng.Int63(), s.Duration, s.trig, 1, original)
	m := out[0].Measurements
	return PathReplay{Throughput: out[0].Throughput, Measurements: &m}, nil
}

// SimultaneousReplay implements ReplaySession.
func (s *SimSession) SimultaneousReplay(original bool) ([2]PathReplay, error) {
	out := s.Profile.Replays(s.rng.Int63(), s.Duration, s.trig, 2, original)
	var pr [2]PathReplay
	for i := 0; i < 2; i++ {
		m := out[i].Measurements
		pr[i] = PathReplay{Throughput: out[i].Throughput, Measurements: &m}
	}
	return pr, nil
}

// CollectiveConfig parameterizes a CollectiveSimSession: the §6 scenario
// where the ISP throttles a service collectively — the replays share the
// rate limiter with other users' traffic of the same service, so only the
// loss-trend correlation can localize it.
type CollectiveConfig struct {
	// BgDiffRate is the rate of other users' traffic of the throttled
	// service sharing the limiter (default 20 Mbit/s; the limiter input is
	// dominated by it, as in the paper's CAIDA-driven setup).
	BgDiffRate float64
	// InputFactor is offered/rate (Table 2: 1.3–2.5; default 1.5); it
	// determines the limiter's rate from the offered load.
	InputFactor float64
	// QueueFactor sizes the TBF queue as a multiple of the burst.
	QueueFactor float64
	// RTT1, RTT2 are the two paths' RTTs (default 35 ms).
	RTT1, RTT2 time.Duration
	// ReplayRate is each replay flow's app rate (default 5 Mbit/s;
	// ignored for UDP apps, whose trace sets the rate).
	ReplayRate float64
	// App selects a UDP application trace to replay instead of the TCP
	// stream ("" = TCP).
	App string
	// Duration of each replay (default 45 s, the paper's minimum).
	Duration time.Duration
}

func (c *CollectiveConfig) fill() {
	if c.BgDiffRate <= 0 {
		c.BgDiffRate = 20e6
	}
	if c.InputFactor <= 0 {
		c.InputFactor = 1.5
	}
	if c.RTT1 <= 0 {
		c.RTT1 = 35 * time.Millisecond
	}
	if c.RTT2 <= 0 {
		c.RTT2 = 35 * time.Millisecond
	}
	if c.ReplayRate <= 0 {
		c.ReplayRate = 5e6
	}
	if c.Duration <= 0 {
		c.Duration = 45 * time.Second
	}
}

// CollectiveSimSession is a ReplaySession for collective per-service
// throttling: background traffic of the targeted service (other users)
// shares the limiter with the replays, so the aggregate simultaneous
// throughput does not add up to the single-replay throughput and the
// detector falls through to loss-trend correlation.
type CollectiveSimSession struct {
	cfg CollectiveConfig
	rng *rand.Rand
}

// NewCollectiveSimSession creates the session.
func NewCollectiveSimSession(rng *rand.Rand, cfg CollectiveConfig) *CollectiveSimSession {
	cfg.fill()
	return &CollectiveSimSession{cfg: cfg, rng: rng}
}

// run executes n replays through the collective bottleneck.
func (s *CollectiveSimSession) run(n int, original bool) []PathReplay {
	c := s.cfg
	var eng netsim.Engine
	rtt := c.RTT1
	if c.RTT2 > rtt {
		rtt = c.RTT2
	}
	// The differentiated-class input is dominated by other users' traffic
	// of the throttled service (the paper directs 25–75% of a CAIDA trace
	// through the limiter, tens of Mbit/s against ~10 Mbit/s of replays);
	// the limiter's rate is then set so offered/rate = InputFactor.
	bgDiff := c.BgDiffRate
	if bgDiff <= 0 {
		bgDiff = 20e6
	}
	replayRate := c.ReplayRate
	if c.App != "" {
		if p, err := trace.ProfileByName(c.App); err == nil && p.FrameInterval > 0 {
			replayRate = float64(p.MeanFrameSize) * 8 / p.FrameInterval.Seconds()
		}
	}
	offered := bgDiff + float64(n)*replayRate
	rate := offered / c.InputFactor
	burst := netsim.BurstForRTT(rate, rtt)
	rtts := []time.Duration{c.RTT1, c.RTT2, c.RTT1}
	paths := make([]netsim.PathSpec, n)
	for i := range paths {
		paths[i] = netsim.PathSpec{RTT: rtts[i%len(rtts)]}
	}
	sc := netsim.NewScenario(&eng, s.rng.Int63(), netsim.CommonSpec{
		Limiter:        &netsim.LimiterSpec{Rate: rate, Burst: burst, Queue: int(c.QueueFactor * float64(burst))},
		BgRate:         bgDiff * 2,
		BgDiffFraction: 0.5,
		BgModPeriod:    time.Second, // trends at Alg. 1's analysis timescales
		BgModSpread:    0.7,
	}, paths...)

	class := netsim.ClassDifferentiated
	if !original {
		class = netsim.ClassDefault
	}
	sc.StartBackground(0, c.Duration)
	out := make([]PathReplay, n)

	if c.App != "" {
		// UDP replay: Poisson-retimed trace, client-side loss detection.
		flows := make([]*netsim.UDPFlow, n)
		for i := range flows {
			tr, err := trace.Generate(c.App, rand.New(rand.NewSource(s.rng.Int63())), 12*time.Second)
			if err != nil {
				panic(err) // unknown app: constructor-validated below
			}
			tr = trace.PoissonRetime(rand.New(rand.NewSource(s.rng.Int63())), trace.ExtendTo(tr, c.Duration))
			f := netsim.NewUDPFlow(&eng, i+1, class, sc.Entry(i))
			flows[i] = f
			sc.Register(i+1, f.Receiver())
			f.Start(tr, 0)
		}
		eng.Run(c.Duration + 2*time.Second)
		for i, f := range flows {
			f.Finish(c.Duration)
			m := f.Measurements(0, c.Duration, paths[i].RTT)
			out[i] = PathReplay{
				Throughput:   measure.WeHeThroughput(f.Deliveries(0), 0, c.Duration),
				Measurements: &m,
			}
		}
		return out
	}

	flows := make([]*netsim.TCPFlow, n)
	for i := range flows {
		f := netsim.NewTCPFlow(&eng, i+1, netsim.TCPConfig{
			Pacing:  true,
			Class:   class,
			AppRate: c.ReplayRate,
			Stop:    c.Duration,
		}, sc.Entry(i), sc.BackDelay(i))
		flows[i] = f
		sc.Register(i+1, f.Receiver())
		f.Start(0)
	}
	eng.Run(c.Duration + 2*time.Second)

	for i, f := range flows {
		m := f.Measurements(0, c.Duration, paths[i].RTT)
		out[i] = PathReplay{
			Throughput:   measure.WeHeThroughput(f.Deliveries(0), 0, c.Duration),
			Measurements: &m,
		}
	}
	return out
}

// SingleReplay implements ReplaySession.
func (s *CollectiveSimSession) SingleReplay(original bool) (PathReplay, error) {
	return s.run(1, original)[0], nil
}

// SimultaneousReplay implements ReplaySession.
func (s *CollectiveSimSession) SimultaneousReplay(original bool) ([2]PathReplay, error) {
	out := s.run(2, original)
	return [2]PathReplay{out[0], out[1]}, nil
}
