// Command wehey-analyze runs WeHeY's common-bottleneck detection offline
// on a recorded measurement session (the JSON a server persists after a
// simultaneous replay; see internal/measure.Session).
//
// Usage:
//
//	wehey-analyze -session session.json
//	wehey-analyze -session session.json -fp 0.01 -v
//	wehey-analyze -merge p1.json,p2.json -out session.json  # combine per-server records
//	wehey-analyze -example > session.json       # emit a sample session
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"github.com/nal-epfl/wehey/internal/core"
	"github.com/nal-epfl/wehey/internal/isp"
	"github.com/nal-epfl/wehey/internal/measure"
	"github.com/nal-epfl/wehey/internal/wehe"
)

func main() {
	var (
		sessionPath = flag.String("session", "", "measurement session JSON")
		merge       = flag.String("merge", "", "comma-separated record/session files to merge")
		out         = flag.String("out", "session.json", "output path for -merge")
		fp          = flag.Float64("fp", 0.05, "acceptable false-positive rate")
		seed        = flag.Int64("seed", 1, "Monte-Carlo seed")
		example     = flag.Bool("example", false, "write a sample session to stdout and exit")
		verbose     = flag.Bool("v", false, "print per-interval-size details")
	)
	flag.Parse()

	if *example {
		writeExample(*seed)
		return
	}
	if *merge != "" {
		mergeSessions(*merge, *out)
		return
	}
	if *sessionPath == "" {
		fmt.Fprintln(os.Stderr, "need -session (or -example)")
		os.Exit(2)
	}
	f, err := os.Open(*sessionPath)
	fatalIf(err)
	session, err := measure.ReadSession(f)
	f.Close()
	fatalIf(err)

	r1, ok1 := session.Find("p1")
	r2, ok2 := session.Find("p2")
	if !ok1 || !ok2 {
		fmt.Fprintln(os.Stderr, "session needs records for paths p1 and p2")
		os.Exit(2)
	}
	m1, err := r1.ToPath()
	fatalIf(err)
	m2, err := r2.ToPath()
	fatalIf(err)

	in := core.DetectorInput{M1: m1, M2: m2, TDiff: session.TDiff}
	if r0, ok := session.Find("p0"); ok {
		in.X = r0.ThroughputBps
		in.Y = measure.SumSamples(r1.ThroughputBps, r2.ThroughputBps)
	}

	rng := rand.New(rand.NewSource(*seed))
	cfg := core.DetectorConfig{
		Throughput: core.ThroughputCmpConfig{Alpha: *fp},
		LossTrend:  core.LossTrendConfig{FP: *fp},
	}
	res, err := core.DetectCommonBottleneck(rng, in, cfg)
	fatalIf(err)

	if tc := res.Throughput; tc != nil {
		fmt.Printf("throughput comparison: p = %.4g → common bottleneck = %v\n", tc.P, tc.CommonBottleneck)
	} else {
		fmt.Println("throughput comparison: skipped (needs p0 record and tdiff)")
	}
	if lt := res.LossTrend; lt != nil {
		fmt.Printf("loss-trend correlation: %d/%d interval sizes correlated → common bottleneck = %v\n",
			lt.Correlations, lt.Sizes, lt.CommonBottleneck)
		if *verbose {
			for _, v := range lt.PerSize {
				fmt.Printf("  σ=%-10v n=%-4d ρ=%+.3f p=%.4f correlated=%v\n",
					v.Sigma, v.Intervals, v.Rho, v.P, v.Correlated)
			}
		}
	}
	fmt.Printf("\nevidence: %s\n", res.Evidence)
	if !res.Evidence.Found() {
		os.Exit(3)
	}
}

// mergeSessions combines the per-server record files written by
// wehey-replay -record into one analyzable session.
func mergeSessions(list, out string) {
	merged := &measure.Session{}
	for _, path := range strings.Split(list, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		f, err := os.Open(path)
		fatalIf(err)
		s, err := measure.ReadSession(f)
		f.Close()
		fatalIf(err)
		merged.Records = append(merged.Records, s.Records...)
		if len(s.TDiff) > 0 {
			merged.TDiff = s.TDiff
		}
		if s.App != "" {
			merged.App = s.App
		}
	}
	f, err := os.Create(out)
	fatalIf(err)
	fatalIf(measure.WriteSession(f, merged))
	fatalIf(f.Close())
	fmt.Printf("merged %d records → %s\n", len(merged.Records), out)
}

// writeExample emits a sample session generated from the simulator so
// users can see the expected format (and test the tool end to end).
func writeExample(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	p := isp.FiveISPs()[0]
	trig := p.DrawTrigger(rng)
	single := p.Replays(rng.Int63(), 15e9, trig, 1, true)
	sim := p.Replays(rng.Int63(), 15e9, trig, 2, true)
	h := wehe.SynthHistory(rng, wehe.SynthHistorySpec{Clients: 12, TestsPerClient: 9, Spread: 0.15})

	session := &measure.Session{
		Client:  "cl-0000001",
		App:     "netflix",
		Carrier: "carrier-1",
		TDiff:   h.TDiff("", "netflix", "carrier-1"),
	}
	m0 := single[0].Measurements
	session.Records = append(session.Records,
		measure.NewRecord("p0", &m0, single[0].Throughput))
	for i, out := range sim {
		m := out.Measurements
		session.Records = append(session.Records,
			measure.NewRecord(fmt.Sprintf("p%d", i+1), &m, out.Throughput))
	}
	fatalIf(measure.WriteSession(os.Stdout, session))
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wehey-analyze:", err)
		os.Exit(1)
	}
}
