// Command wehey-experiments regenerates the paper's tables and figures
// (see DESIGN.md for the per-experiment index).
//
// Usage:
//
//	wehey-experiments -list
//	wehey-experiments -run table1,figure6 -trials 5
//	wehey-experiments -run all -full        # paper-scale (slow)
//	wehey-experiments -run figure6 -workers 8
//
// -workers fans the simulation runs of one experiment out over a worker
// pool (default: GOMAXPROCS). Seeds derive from each run's identity, not
// execution order, so the output is byte-identical for every width.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/nal-epfl/wehey/internal/clock"
	"github.com/nal-epfl/wehey/internal/experiments"
)

func main() {
	var (
		run      = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		trials   = flag.Int("trials", 0, "trials per cell (0 = per-experiment default)")
		seed     = flag.Int64("seed", 1, "base random seed")
		full     = flag.Bool("full", false, "paper-scale trial counts (slow)")
		duration = flag.Duration("duration", 0, "replay duration override (0 = per-experiment default)")
		workers  = flag.Int("workers", 0, "simulation worker-pool width (0 = GOMAXPROCS); output is identical for any value")
	)
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return
	}

	cfg := experiments.Config{
		Trials:   *trials,
		Seed:     *seed,
		Full:     *full,
		Duration: *duration,
		Workers:  *workers,
	}

	start := clock.Now()
	if *run == "all" {
		experiments.RunAll(os.Stdout, cfg)
	} else {
		for _, name := range strings.Split(*run, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if err := experiments.Run(os.Stdout, name, cfg); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", clock.Since(start).Round(time.Millisecond))
}
