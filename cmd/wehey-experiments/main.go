// Command wehey-experiments regenerates the paper's tables and figures
// (see DESIGN.md for the per-experiment index).
//
// Usage:
//
//	wehey-experiments -list
//	wehey-experiments -run table1,figure6 -trials 5
//	wehey-experiments -run all -full        # paper-scale (slow)
//	wehey-experiments -run figure6 -workers 8
//	wehey-experiments -run all -cache-dir .simcache   # incremental reruns
//
// -workers fans the simulation runs of one experiment out over a worker
// pool (default: GOMAXPROCS). Seeds derive from each run's identity, not
// execution order, so the output is byte-identical for every width.
//
// -cache memoizes simulations in-process (identical trials across
// experiments — e.g. the shared ablation pool — simulate once);
// -cache-dir additionally persists results, so rerunning after an
// analysis- or report-layer change skips every simulation. Reports are
// byte-identical with the cache off, cold, or warm; a `cache:` counter
// line goes to stderr, never into the report stream.
//
// -cpuprofile, -memprofile, and -trace write stdlib runtime/pprof and
// runtime/trace output for paper-scale perf work:
//
//	wehey-experiments -run table1 -full -cpuprofile cpu.pprof
//	go tool pprof cpu.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"github.com/nal-epfl/wehey/internal/clock"
	"github.com/nal-epfl/wehey/internal/experiments"
)

func main() {
	// Profile/trace defers must flush before the process exits, so the
	// work happens in realMain and the exit code is applied here.
	os.Exit(realMain())
}

func realMain() int {
	var (
		run      = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		trials   = flag.Int("trials", 0, "trials per cell (0 = per-experiment default)")
		seed     = flag.Int64("seed", 1, "base random seed")
		full     = flag.Bool("full", false, "paper-scale trial counts (slow)")
		duration = flag.Duration("duration", 0, "replay duration override (0 = per-experiment default)")
		workers  = flag.Int("workers", 0, "simulation worker-pool width (0 = GOMAXPROCS); output is identical for any value")
		bgMode   = flag.String("background", "", "background simulation mode for specs that don't pin one: packet (default) or fluid (DESIGN.md §14)")
		useCache = flag.Bool("cache", false, "memoize simulations in-process (single-flight dedup of identical trials)")
		cacheDir = flag.String("cache-dir", "", "persist simulation results under this directory (implies -cache)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		traceOut = flag.String("trace", "", "write a runtime/trace execution trace to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			closeOrFatal(f)
		}()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := trace.Start(f); err != nil {
			fatal(err)
		}
		defer func() {
			trace.Stop()
			closeOrFatal(f)
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // settle live heap so the profile shows retention
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fatal(err)
			}
			closeOrFatal(f)
		}()
	}

	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		for _, name := range experiments.ExtraNames() {
			fmt.Printf("%s (opt-in; excluded from -run all)\n", name)
		}
		return 0
	}

	switch *bgMode {
	case "", experiments.BgModePacket, experiments.BgModeFluid:
	default:
		fatal(fmt.Errorf("unknown -background mode %q (packet or fluid)", *bgMode))
	}

	cfg := experiments.Config{
		Trials:         *trials,
		Seed:           *seed,
		Full:           *full,
		Duration:       *duration,
		Workers:        *workers,
		BackgroundMode: *bgMode,
	}
	if *cacheDir != "" {
		cache, err := experiments.NewDiskSimCache(*cacheDir)
		if err != nil {
			fatal(err)
		}
		cfg.Cache = cache
	} else if *useCache {
		cfg.Cache = experiments.NewSimCache()
	}

	start := clock.Now()
	if *run == "all" {
		experiments.RunAll(os.Stdout, cfg)
	} else {
		for _, name := range strings.Split(*run, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if err := experiments.Run(os.Stdout, name, cfg); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Println()
		}
	}
	if cfg.Cache != nil {
		// Stderr, not stdout: the report stream must stay byte-identical
		// whether the cache is off, cold, or warm.
		fmt.Fprintf(os.Stderr, "cache: %s\n", cfg.Cache.Stats())
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", clock.Since(start).Round(time.Millisecond))
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wehey-experiments:", err)
	os.Exit(1)
}

func closeOrFatal(f *os.File) {
	if err := f.Close(); err != nil {
		fatal(err)
	}
}
