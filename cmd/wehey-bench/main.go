// Command wehey-bench runs the repository's benchmark suite and writes a
// machine-readable perf-trajectory snapshot (BENCH_<pr>.json). Committed
// snapshots let later performance PRs diff ns/op, B/op, allocs/op, and the
// per-benchmark result metrics against a fixed baseline instead of
// re-running old revisions.
//
// Usage:
//
//	wehey-bench -out BENCH_3.json                  # full suite, one iteration each
//	wehey-bench -bench 'Table1|Figure6' -count 3   # focus run, averaged
//	wehey-bench -cache -out BENCH_4.json           # shared sim cache; hit/miss metrics per benchmark
//	go test -run '^$' -bench . -benchmem | wehey-bench -parse -out snap.json
//
// The tool shells out to `go test` in the repository root (or parses a
// captured `go test -bench` log on stdin with -parse), extracts every
// `Benchmark*` result line, and emits deterministic JSON: benchmarks
// sorted by name, metrics sorted by key, no timestamps or host state, so
// a committed snapshot only changes when the numbers do.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is the committed perf-trajectory record.
type Snapshot struct {
	// Schema versions the JSON layout.
	Schema int `json:"schema"`
	// BenchArgs records the `go test` invocation the numbers came from.
	BenchArgs string `json:"bench_args"`
	// Benchmarks holds one entry per benchmark, sorted by name.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark aggregates the result lines of one benchmark (averaged over
// -count runs).
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix or the
	// -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Runs is how many result lines were aggregated.
	Runs int `json:"runs"`
	// Iterations is the mean b.N across runs.
	Iterations float64 `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BPerOp     float64 `json:"b_per_op,omitempty"`
	AllocsSize float64 `json:"allocs_per_op,omitempty"`
	// Metrics carries the benchmark's custom b.ReportMetric units
	// (e.g. "ISP1-localized-%").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var (
		bench     = flag.String("bench", ".", "benchmark regexp passed to go test -bench")
		benchtime = flag.String("benchtime", "1x", "go test -benchtime value")
		count     = flag.Int("count", 1, "go test -count value; runs are averaged")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		out       = flag.String("out", "", "output file (default stdout)")
		parse     = flag.Bool("parse", false, "parse `go test -bench` output from stdin instead of running")
		workers   = flag.Int("workers", 0, "experiment worker-pool width forwarded to the bench harness")
		cache     = flag.Bool("cache", false, "share a simulation cache across benchmarks; hit/miss deltas land in each benchmark's metrics")
		cacheDir  = flag.String("cache-dir", "", "persist the shared simulation cache under this directory (implies -cache)")
	)
	flag.Parse()

	var input io.Reader
	argsDesc := "stdin"
	if *parse {
		input = os.Stdin
	} else {
		args := []string{"test", "-run", "^$", "-bench", *bench,
			"-benchmem", "-benchtime", *benchtime,
			"-count", strconv.Itoa(*count)}
		if *workers > 0 {
			args = append(args, "-workers", strconv.Itoa(*workers))
		}
		if *cacheDir != "" {
			args = append(args, "-cache-dir", *cacheDir)
		} else if *cache {
			args = append(args, "-cache")
		}
		args = append(args, *pkg)
		argsDesc = "go " + strings.Join(args, " ")
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		pipe, err := cmd.StdoutPipe()
		if err != nil {
			fatal(err)
		}
		if err := cmd.Start(); err != nil {
			fatal(err)
		}
		defer func() {
			if err := cmd.Wait(); err != nil {
				fatal(fmt.Errorf("go test: %w", err))
			}
		}()
		// Echo the raw lines so the run stays observable while parsing.
		input = io.TeeReader(pipe, os.Stderr)
	}

	snap, err := parseBench(input)
	if err != nil {
		fatal(err)
	}
	snap.BenchArgs = argsDesc

	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
}

// parseBench aggregates `go test -bench` result lines into a Snapshot.
func parseBench(r io.Reader) (*Snapshot, error) {
	type acc struct {
		runs    int
		iters   float64
		sums    map[string]float64 // unit → summed value
		metrics map[string]bool    // units seen beyond the stock three
	}
	byName := map[string]*acc{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-P  N  v1 unit1  v2 unit2 ...
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		a := byName[name]
		if a == nil {
			a = &acc{sums: map[string]float64{}, metrics: map[string]bool{}}
			byName[name] = a
		}
		a.runs++
		a.iters += iters
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			unit := fields[i+1]
			a.sums[unit] += v
			switch unit {
			case "ns/op", "B/op", "allocs/op":
			default:
				a.metrics[unit] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(byName) == 0 {
		return nil, fmt.Errorf("no Benchmark result lines found")
	}

	snap := &Snapshot{Schema: 1}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		a := byName[n]
		div := float64(a.runs)
		b := Benchmark{
			Name:       n,
			Runs:       a.runs,
			Iterations: a.iters / div,
			NsPerOp:    a.sums["ns/op"] / div,
			BPerOp:     a.sums["B/op"] / div,
			AllocsSize: a.sums["allocs/op"] / div,
		}
		if len(a.metrics) > 0 {
			b.Metrics = make(map[string]float64, len(a.metrics))
			for u := range a.metrics {
				b.Metrics[u] = a.sums[u] / div
			}
		}
		snap.Benchmarks = append(snap.Benchmarks, b)
	}
	return snap, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wehey-bench:", err)
	os.Exit(1)
}
