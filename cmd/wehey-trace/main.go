// Command wehey-trace generates, transforms, converts, and inspects the
// replay traces WeHe/WeHeY ship between servers and clients.
//
// Usage:
//
//	wehey-trace -gen netflix -duration 10s -out netflix.whtr
//	wehey-trace -in netflix.whtr -stats
//	wehey-trace -in netflix.whtr -invert -out control.whtr
//	wehey-trace -in zoom.whtr -poisson -extend 45s -out replay.whtr
//	wehey-trace -in netflix.whtr -json -out netflix.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"github.com/nal-epfl/wehey/internal/trace"
)

func main() {
	var (
		gen      = flag.String("gen", "", "generate a trace for this app (see -apps)")
		apps     = flag.Bool("apps", false, "list known applications and exit")
		in       = flag.String("in", "", "input trace (binary .whtr or .json)")
		out      = flag.String("out", "", "output path (binary unless -json)")
		duration = flag.Duration("duration", 10*time.Second, "generated trace duration")
		seed     = flag.Int64("seed", 1, "generation seed")
		invert   = flag.Bool("invert", false, "bit-invert payloads (WeHe control)")
		poisson  = flag.Bool("poisson", false, "Poisson-retime downstream packets (§3.4)")
		extend   = flag.Duration("extend", 0, "extend by repetition to at least this duration")
		asJSON   = flag.Bool("json", false, "write JSON instead of binary")
		stats    = flag.Bool("stats", false, "print trace statistics")
	)
	flag.Parse()

	if *apps {
		for _, p := range trace.Profiles() {
			fmt.Printf("%-12s %s  sni=%s\n", p.Name, p.Transport, p.SNI)
		}
		return
	}

	var tr *trace.Trace
	var err error
	switch {
	case *gen != "":
		tr, err = trace.Generate(*gen, rand.New(rand.NewSource(*seed)), *duration)
	case *in != "":
		tr, err = readTrace(*in)
	default:
		fmt.Fprintln(os.Stderr, "need -gen or -in (or -apps)")
		os.Exit(2)
	}
	fatalIf(err)

	if *invert {
		tr = trace.BitInvert(tr)
	}
	if *poisson {
		tr = trace.PoissonRetime(rand.New(rand.NewSource(*seed+1)), tr)
	}
	if *extend > 0 {
		tr = trace.ExtendTo(tr, *extend)
	}

	if *stats || *out == "" {
		printStats(tr)
	}
	if *out != "" {
		fatalIf(writeTrace(*out, tr, *asJSON))
		fmt.Fprintf(os.Stderr, "wrote %s (%d packets)\n", *out, len(tr.Packets))
	}
}

func readTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		return trace.ReadJSON(f)
	}
	return trace.Decode(f)
}

func writeTrace(path string, tr *trace.Trace, asJSON bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if asJSON || strings.HasSuffix(path, ".json") {
		return trace.WriteJSON(f, tr)
	}
	return trace.Encode(f, tr)
}

func printStats(tr *trace.Trace) {
	fmt.Printf("app:        %s (%s)\n", tr.App, tr.Transport)
	if tr.SNI != "" {
		fmt.Printf("sni:        %s\n", tr.SNI)
	}
	fmt.Printf("duration:   %v\n", tr.Duration().Round(time.Millisecond))
	fmt.Printf("packets:    %d (s2c %d, c2s %d)\n",
		len(tr.Packets), tr.Count(trace.ServerToClient), tr.Count(trace.ClientToServer))
	fmt.Printf("bytes s2c:  %d (%.2f Mbit/s avg)\n",
		tr.TotalBytes(trace.ServerToClient), tr.AvgRate(trace.ServerToClient)/1e6)
	fmt.Printf("bytes c2s:  %d (%.2f Mbit/s avg)\n",
		tr.TotalBytes(trace.ClientToServer), tr.AvgRate(trace.ClientToServer)/1e6)
	if len(tr.Packets) > 0 {
		if sni := trace.SNIFromPayload(tr.Packets[0].Payload); sni != "" {
			fmt.Printf("dpi:        handshake exposes %q\n", sni)
		} else {
			fmt.Printf("dpi:        no matchable SNI in the handshake\n")
		}
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wehey-trace:", err)
		os.Exit(1)
	}
}
