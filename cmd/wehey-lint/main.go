// Command wehey-lint runs the repository's determinism-invariant analyzers
// (internal/analysis) over the given package patterns.
//
// Usage:
//
//	wehey-lint [-json] [-list] [patterns...]
//
// Patterns default to ./... . Exit status is 0 when clean, 1 when findings
// were reported, 2 on a driver error (parse/typecheck/go list failure).
// Findings are suppressed per line with:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/nal-epfl/wehey/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of file:line:col lines")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, err := analysis.Run(".", patterns, analysis.All(), analysis.DefaultConfig())
	if err != nil {
		fmt.Fprintf(os.Stderr, "wehey-lint: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "wehey-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "wehey-lint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
