// Command wehey-lint runs the repository's determinism-invariant analyzers
// (internal/analysis) over the given package patterns.
//
// Usage:
//
//	wehey-lint [-json] [-list] [-graph] [-why <func>] [-ignores] [-write-golden] [patterns...]
//
// Patterns default to ./... . Exit status is 0 when clean, 1 when findings
// were reported, 2 on a driver error (parse/typecheck/go list failure).
// Findings are suppressed per line with:
//
//	//lint:ignore <analyzer> <reason>
//
// Dead directives — naming an unknown analyzer, or suppressing nothing —
// are themselves findings (analyzer "deadignore").
//
// Inspection modes:
//
//	-graph        dump the module call graph: one line per function with
//	              its call/fact counters, plus summary totals.
//	-why <func>   explain what invariant-relevant operations a function
//	              transitively reaches (wall clock, global math/rand,
//	              blocking calls), with a witness call chain for each.
//	              <func> matches a full label ("internal/service.(*Scheduler).Submit")
//	              or any suffix ("Submit").
//	-ignores      list the live lint:ignore directives with their reasons.
//	-write-golden regenerate internal/analysis/cachekey.golden from the
//	              current spec structs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/nal-epfl/wehey/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings (or -ignores listing) as JSON instead of text lines")
	list := flag.Bool("list", false, "list the analyzers and exit")
	graph := flag.Bool("graph", false, "dump the module call graph and exit")
	why := flag.String("why", "", "explain what invariant-relevant operations a function reaches and exit")
	ignores := flag.Bool("ignores", false, "list live lint:ignore directives and exit")
	writeGolden := flag.Bool("write-golden", false, "regenerate the cachekey spec-fingerprint golden and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cfg := analysis.DefaultConfig()

	if *graph || *why != "" || *writeGolden {
		pkgs, err := analysis.Load(".", patterns)
		if err != nil {
			fail(err)
		}
		if len(pkgs) == 0 {
			fail(fmt.Errorf("no packages matched %v", patterns))
		}
		m := analysis.BuildModule(pkgs[0].Fset, pkgs)
		switch {
		case *writeGolden:
			path := cfg.CacheKeyGolden
			if !filepath.IsAbs(path) {
				path = filepath.Join(".", path)
			}
			if err := os.WriteFile(path, []byte(analysis.FormatCacheKeyGolden(m)), 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", path)
		case *graph:
			printGraph(m)
		default:
			if !printWhy(m, *why) {
				fmt.Fprintf(os.Stderr, "wehey-lint: no function matches %q\n", *why)
				os.Exit(2)
			}
		}
		return
	}

	res, err := analysis.RunAudit(".", patterns, analysis.All(), cfg)
	if err != nil {
		fail(err)
	}

	if *ignores {
		sups := res.Suppressions
		if sups == nil {
			sups = []analysis.Suppression{}
		}
		if *jsonOut {
			emitJSON(sups)
		} else {
			for _, s := range sups {
				fmt.Printf("%s:%d: %s: %s\n", relify(s.File), s.Line, s.Analyzer, s.Reason)
			}
		}
		return
	}

	diags := res.Diagnostics
	if *jsonOut {
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		emitJSON(diags)
	} else {
		for _, d := range diags {
			fmt.Println(relify(d.String()))
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "wehey-lint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

func printGraph(m *analysis.Module) {
	st := m.Stats()
	fmt.Printf("packages=%d functions=%d edges=%d\n", st.Packages, st.Functions, st.Edges)
	for _, n := range m.Nodes() {
		fmt.Printf("%s calls=%d wall=%d rand=%d block=%d\n",
			m.FuncLabel(n.Fn), len(n.Calls), len(n.WallSinks), len(n.RandSinks), len(n.Blocking))
	}
}

func printWhy(m *analysis.Module, name string) bool {
	reports := m.Why(name)
	for _, r := range reports {
		fmt.Print(relify(r))
	}
	return len(reports) > 0
}

// relify strips the working-directory prefix from file positions so the
// human-readable output stays short and stable across checkouts. JSON
// output keeps absolute paths for editor integrations.
func relify(s string) string {
	wd, err := os.Getwd()
	if err != nil {
		return s
	}
	return strings.ReplaceAll(s, wd+string(filepath.Separator), "")
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "wehey-lint: %v\n", err)
	os.Exit(2)
}
