// Command wehey-topology runs the topology-construction (TC) pipeline
// (§3.3): it ingests a traceroute table (JSONL) and an annotation table
// (JSON), applies the validity filters, and writes the topology database
// that WeHeY clients query for suitable server pairs.
//
// Usage:
//
//	wehey-topology -synth -out ./tcdata          # generate a synthetic dataset + DB
//	wehey-topology -traceroutes raws.jsonl -annotations ann.json -db topology.json
//	wehey-topology -db topology.json -lookup 100.65.1.10
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"github.com/nal-epfl/wehey/internal/topology"
)

func main() {
	var (
		synth   = flag.Bool("synth", false, "generate a synthetic traceroute dataset first")
		out     = flag.String("out", ".", "output directory for -synth")
		rawsP   = flag.String("traceroutes", "", "traceroute table (JSONL)")
		annP    = flag.String("annotations", "", "annotation table (JSON)")
		dbP     = flag.String("db", "topology.json", "topology database path (output, or input for -lookup)")
		lookup  = flag.String("lookup", "", "query the database for a client IP and exit")
		seed    = flag.Int64("seed", 1, "seed for -synth")
		verbose = flag.Bool("v", false, "print per-step statistics")
	)
	flag.Parse()

	if *lookup != "" {
		f, err := os.Open(*dbP)
		fatalIf(err)
		defer f.Close()
		db, err := topology.ReadDBJSON(f)
		fatalIf(err)
		entry, ok := db.Lookup(*lookup)
		if !ok || len(entry.Pairs) == 0 {
			fmt.Printf("no suitable topology for %s\n", *lookup)
			os.Exit(1)
		}
		fmt.Printf("prefix %s (AS%d): %d suitable server pair(s)\n", entry.Prefix, entry.ASN, len(entry.Pairs))
		for _, p := range entry.Pairs {
			fmt.Printf("  %s + %s (converge at %s)\n", p.Server1, p.Server2, p.ConvergeIP)
		}
		return
	}

	if *synth {
		rng := rand.New(rand.NewSource(*seed))
		net := topology.Synthesize(rng, topology.SynthSpec{})
		*rawsP = filepath.Join(*out, "traceroutes.jsonl")
		*annP = filepath.Join(*out, "annotations.json")
		rf, err := os.Create(*rawsP)
		fatalIf(err)
		fatalIf(topology.WriteRawsJSONL(rf, net.Raws))
		fatalIf(rf.Close())
		af, err := os.Create(*annP)
		fatalIf(err)
		fatalIf(topology.WriteAnnotationsJSON(af, net.Annotations))
		fatalIf(af.Close())
		fmt.Printf("wrote %d traceroutes to %s and %d annotations to %s\n",
			len(net.Raws), *rawsP, len(net.Annotations), *annP)
	}

	if *rawsP == "" || *annP == "" {
		fmt.Fprintln(os.Stderr, "need -traceroutes and -annotations (or -synth)")
		os.Exit(2)
	}

	rf, err := os.Open(*rawsP)
	fatalIf(err)
	raws, err := topology.ReadRawsJSONL(rf)
	rf.Close()
	fatalIf(err)
	af, err := os.Open(*annP)
	fatalIf(err)
	ann, err := topology.ReadAnnotationsJSON(af)
	af.Close()
	fatalIf(err)

	kept, discarded := topology.AnnotateAll(raws, ann)
	if *verbose {
		fmt.Printf("ingested %d traceroutes; kept %d, discarded %d\n", len(raws), len(kept), discarded)
	}
	db := topology.Construct(kept)
	dbf, err := os.Create(*dbP)
	fatalIf(err)
	fatalIf(db.WriteJSON(dbf))
	fatalIf(dbf.Close())
	fmt.Printf("topology database: %d prefixes → %s\n", db.Len(), *dbP)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wehey-topology:", err)
		os.Exit(1)
	}
}
