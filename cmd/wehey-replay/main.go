// Command wehey-replay is the real-socket replay tool: a server that
// pushes a trace's bytes over the reliable UDP transport (collecting the
// §3.4 server-side loss measurements), a client that acknowledges and
// bins WeHe throughput samples, and a demo mode that runs both through an
// in-process differentiating middlebox.
//
// Usage:
//
//	wehey-replay -role demo -app netflix                   # all-in-one
//	wehey-replay -role server -listen 127.0.0.1:9300 -app netflix -record p1.json
//	wehey-replay -role client -server 127.0.0.1:9300
//
// Distributed simultaneous replay (§3.4): run two servers, then one client
// that opens both paths back-to-back; each server persists its measurement
// record, and wehey-analyze runs the detection offline:
//
//	wehey-replay -role server -listen :9301 -record p1.json &
//	wehey-replay -role server -listen :9302 -record p2.json &
//	wehey-replay -role client -server :9301 -server2 :9302
//	... merge p1.json/p2.json into a session and run wehey-analyze
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"

	"github.com/nal-epfl/wehey/internal/clock"
	"github.com/nal-epfl/wehey/internal/measure"
	"github.com/nal-epfl/wehey/internal/testbed"
	"github.com/nal-epfl/wehey/internal/trace"
	"github.com/nal-epfl/wehey/internal/transport"
	"github.com/nal-epfl/wehey/internal/wehe"
)

func main() {
	var (
		role     = flag.String("role", "demo", "demo | server | client")
		app      = flag.String("app", "netflix", "application trace to replay")
		listen   = flag.String("listen", "127.0.0.1:9300", "server listen address")
		server   = flag.String("server", "127.0.0.1:9300", "server address (client role)")
		server2  = flag.String("server2", "", "second server for a simultaneous replay (client role)")
		duration = flag.Duration("duration", 5*time.Second, "replay duration")
		inverted = flag.Bool("inverted", false, "replay the bit-inverted trace")
		rate     = flag.Float64("rate", 2e6, "demo middlebox throttling rate (bits/s)")
		seed     = flag.Int64("seed", 1, "trace generation seed")
		record   = flag.String("record", "", "write the server's measurement record JSON here")
		pathName = flag.String("path", "p1", "path label for the measurement record")
	)
	flag.Parse()

	tr, err := trace.Generate(*app, rand.New(rand.NewSource(*seed)), *duration+time.Second)
	fatalIf(err)
	if *inverted {
		tr = trace.BitInvert(tr)
	}

	switch *role {
	case "demo":
		runDemo(tr, *app, *duration, *rate)
	case "server":
		runServer(*listen, tr, *duration, *record, *pathName)
	case "client":
		if *server2 != "" {
			runSimClient([]string{*server, *server2}, *duration)
		} else {
			runClient(*server, *duration)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown role %q\n", *role)
		os.Exit(2)
	}
}

func runDemo(tr *trace.Trace, app string, dur time.Duration, rate float64) {
	mb := testbed.NewMiddlebox(testbed.MiddleboxConfig{
		Delay: 5 * time.Millisecond,
		SNIs:  testbed.SNIsForApps(app),
		Rate:  rate,
		Burst: 8000,
	})
	defer mb.Close()
	inv := trace.BitInvert(tr)

	orig, err := testbed.RunReliableReplay(context.Background(), mb, "orig", tr, dur, 1)
	fatalIf(err)
	ctrl, err := testbed.RunReliableReplay(context.Background(), mb, "inv", inv, dur, 2)
	fatalIf(err)

	fmt.Printf("original:     %6.2f Mbit/s (retrans %.1f%%)\n", orig.Throughput.Mean()/1e6, orig.RetransRate*100)
	fmt.Printf("bit-inverted: %6.2f Mbit/s (retrans %.1f%%)\n", ctrl.Throughput.Mean()/1e6, ctrl.RetransRate*100)
	det, err := wehe.DetectDifferentiation(orig.Throughput, ctrl.Throughput, wehe.DetectionConfig{})
	fatalIf(err)
	fmt.Printf("WeHe verdict: differentiation = %v (KS p = %.3g)\n", det.Differentiation, det.KS.P)
}

// runServer waits for a client hello, connects back, and pushes trace
// bytes under congestion control for the duration.
func runServer(listen string, tr *trace.Trace, dur time.Duration, record, pathName string) {
	addr, err := net.ResolveUDPAddr("udp", listen)
	fatalIf(err)
	ln, err := net.ListenUDP("udp", addr)
	fatalIf(err)
	fmt.Println("listening on", ln.LocalAddr())

	buf := make([]byte, 2048)
	var clientAddr *net.UDPAddr
	for {
		n, from, err := ln.ReadFromUDP(buf)
		fatalIf(err)
		if n > 0 {
			clientAddr = from
			break
		}
	}
	ln.Close()
	conn, err := net.DialUDP("udp", addr, clientAddr)
	fatalIf(err)
	defer conn.Close()
	fmt.Println("client connected from", clientAddr)

	var hello []byte
	if len(tr.Packets) > 0 {
		hello = tr.Packets[0].Payload
	}
	sender := transport.NewSender(conn, transport.SenderConfig{ConnID: 1, Hello: hello})
	ctx, cancel := context.WithTimeout(context.Background(), dur)
	defer cancel()
	if err := sender.Transfer(ctx, 0); err != nil && err != context.DeadlineExceeded {
		fatalIf(err)
	}
	min, avg := sender.MinAndAvgRTT()
	fmt.Printf("sent %d packets, %d retransmissions (%.1f%%), RTT min/avg %v/%v, %d loss events\n",
		sender.TxCount, sender.RtxCount, sender.RetransmissionRate()*100, min, avg, len(sender.LossLog))

	if record != "" {
		rtt := min
		if rtt <= 0 {
			rtt = 20 * time.Millisecond
		}
		m := sender.Measurements(dur, rtt)
		rec := measure.NewRecord(pathName, &m, measure.Throughput{})
		f, err := os.Create(record)
		fatalIf(err)
		fatalIf(measure.WriteSession(f, &measure.Session{Records: []*measure.Record{rec}}))
		fatalIf(f.Close())
		fmt.Println("measurement record →", record)
	}
}

// runSimClient performs a simultaneous replay against two servers: it
// opens both paths with back-to-back hellos (the §3.4 synchronization —
// "the client simply tells the two servers to start via two commands sent
// back-to-back") and acknowledges both replays concurrently.
func runSimClient(servers []string, dur time.Duration) {
	conns := make([]*net.UDPConn, len(servers))
	receivers := make([]*transport.Receiver, len(servers))
	for i, srv := range servers {
		addr, err := net.ResolveUDPAddr("udp", srv)
		fatalIf(err)
		conn, err := net.DialUDP("udp", nil, addr)
		fatalIf(err)
		defer conn.Close()
		conns[i] = conn
		receivers[i] = transport.NewReceiver(conn)
	}
	// Back-to-back starts.
	start := clock.Now()
	for i, conn := range conns {
		hello := transport.HelloPacket(uint32(i + 1))
		for k := 0; k < 3; k++ {
			conn.Write(hello) // hello datagrams are fire-and-forget; loss is retried
		}
	}
	fmt.Printf("both paths opened within %v\n", clock.Since(start))

	ctx, cancel := context.WithTimeout(context.Background(), dur+2*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := range receivers {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			receivers[i].Serve(ctx) // serve ends with the context deadline
		}()
	}
	wg.Wait()
	for i, r := range receivers {
		th := measure.WeHeThroughput(r.Deliveries(), 0, dur)
		fmt.Printf("path p%d: %d bytes, mean %.2f Mbit/s\n", i+1, r.DeliveredBytes(), th.Mean()/1e6)
	}
}

// runClient opens the path with hello datagrams, acknowledges data, and
// prints WeHe throughput samples.
func runClient(server string, dur time.Duration) {
	addr, err := net.ResolveUDPAddr("udp", server)
	fatalIf(err)
	conn, err := net.DialUDP("udp", nil, addr)
	fatalIf(err)
	defer conn.Close()

	hello := transport.HelloPacket(1)
	for i := 0; i < 3; i++ {
		conn.Write(hello) // hello datagrams are fire-and-forget; loss is retried
		time.Sleep(20 * time.Millisecond)
	}

	receiver := transport.NewReceiver(conn)
	ctx, cancel := context.WithTimeout(context.Background(), dur+2*time.Second)
	defer cancel()
	fatalIfNot(receiver.Serve(ctx), context.DeadlineExceeded)

	th := measure.WeHeThroughput(receiver.Deliveries(), 0, dur)
	fmt.Printf("received %d bytes; mean throughput %.2f Mbit/s over %d intervals\n",
		receiver.DeliveredBytes(), th.Mean()/1e6, len(th.Samples))
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "wehey-replay:", err)
		os.Exit(1)
	}
}

func fatalIfNot(err, allowed error) {
	if err != nil && err != allowed {
		fatalIf(err)
	}
}
