// Command wehey-serve runs the measurement-campaign service: a durable
// job scheduler with an HTTP admin plane. Jobs are localization sessions
// over the simulator ("sim" backend, memoized through the on-disk
// simulation cache) or the loopback testbed ("testbed" backend).
//
// Usage:
//
//	wehey-serve -addr 127.0.0.1:9400 -journal campaign/journal.wj \
//	            -cache-dir campaign/simcache -workers 4
//
// The journal makes the campaign crash-safe: restart the server with the
// same -journal and it resumes every incomplete job exactly once, without
// re-running completed ones. The server prints its listening address on
// stdout (useful with -addr 127.0.0.1:0) and shuts down gracefully on
// SIGINT/SIGTERM, leaving interrupted jobs for the next run.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/nal-epfl/wehey/internal/experiments"
	"github.com/nal-epfl/wehey/internal/service"
)

func main() {
	var (
		addr            = flag.String("addr", "127.0.0.1:9400", "admin-plane listen address (use :0 for an ephemeral port)")
		workers         = flag.Int("workers", 4, "worker pool size")
		queueLimit      = flag.Int("queue-limit", 256, "admission control: max queued jobs")
		shards          = flag.Int("shards", 0, "scheduler shard count (0 = default)")
		journal         = flag.String("journal", "", "journal file path (empty = volatile, no crash safety)")
		journalMaxBatch = flag.Int("journal-max-batch", 0, "max records per journal group commit (0 = default)")
		journalMaxDelay = flag.Duration("journal-max-delay", 0, "how long an under-full journal batch waits before fsyncing anyway")
		cacheDir        = flag.String("cache-dir", "", "sim-result disk cache directory (empty = in-memory cache)")
		deadline        = flag.Duration("deadline", 5*time.Minute, "default per-attempt deadline")
	)
	flag.Parse()

	var simCache *experiments.SimCache
	if *cacheDir != "" {
		var err error
		simCache, err = experiments.NewDiskSimCache(*cacheDir)
		fatalIf(err)
	}

	sched, err := service.NewScheduler(service.Options{
		Workers:         *workers,
		QueueLimit:      *queueLimit,
		Shards:          *shards,
		DefaultDeadline: *deadline,
		JournalPath:     *journal,
		JournalMaxBatch: *journalMaxBatch,
		JournalMaxDelay: *journalMaxDelay,
		Backends: map[string]service.Backend{
			service.BackendSim:     service.NewSimBackend(simCache),
			service.BackendTestbed: &service.TestbedBackend{},
			service.BackendNull:    service.NullBackend{},
		},
	})
	fatalIf(err)
	sched.Start()

	ln, err := net.Listen("tcp", *addr)
	fatalIf(err)
	fmt.Printf("wehey-serve listening on %s\n", ln.Addr())

	srv := &http.Server{Handler: service.Handler(sched)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "wehey-serve: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx) // best-effort drain; the scheduler close below is what preserves state
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "wehey-serve: %v\n", err)
		}
	}
	sched.Close()
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "wehey-serve: %v\n", err)
		os.Exit(1)
	}
}
