// Command wehey-submit is the operator client for wehey-serve.
//
// Usage:
//
//	wehey-submit -server http://127.0.0.1:9400 submit -backend sim -seed 7
//	wehey-submit -server http://127.0.0.1:9400 submit -backend testbed -pair A -wait
//	wehey-submit -server http://127.0.0.1:9400 submit -backend null -batch 1000
//	wehey-submit -server http://127.0.0.1:9400 get j000001
//	wehey-submit -server http://127.0.0.1:9400 status j000001 j000002 j000003
//	wehey-submit -server http://127.0.0.1:9400 wait j000001
//	wehey-submit -server http://127.0.0.1:9400 cancel j000001
//	wehey-submit -server http://127.0.0.1:9400 list
//	wehey-submit -server http://127.0.0.1:9400 metrics
//
// submit prints the assigned job ID on the first line (scripting-friendly);
// with -wait it polls until the job is terminal and exits non-zero unless
// the job is done. With -batch N it submits N copies of the spec — seeds
// incrementing from -seed — in one round-trip (one server-side journal
// fsync for the whole batch) and prints one job ID per line. status takes
// many IDs and fetches them in one round-trip; list pages through the
// server cursor transparently, so huge campaigns list in bounded memory
// per request.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/nal-epfl/wehey/internal/service"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:9400", "wehey-serve base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	c := &service.Client{BaseURL: *server}
	ctx := context.Background()

	switch args[0] {
	case "submit":
		submit(ctx, c, args[1:])
	case "get":
		needID(args)
		job, err := c.Job(ctx, args[1])
		fatalIf(err)
		printJSON(job)
	case "status":
		needID(args)
		jobs, missing, err := c.StatusBatch(ctx, args[1:])
		fatalIf(err)
		printJSON(service.BatchStatusResponse{Jobs: jobs, Missing: missing})
	case "wait":
		needID(args)
		job, err := c.Await(ctx, args[1], 0)
		fatalIf(err)
		printJSON(job)
		exitForState(job)
	case "cancel":
		needID(args)
		job, err := c.Cancel(ctx, args[1])
		fatalIf(err)
		printJSON(job)
	case "list":
		jobs, err := c.Jobs(ctx)
		fatalIf(err)
		printJSON(jobs)
	case "metrics":
		m, err := c.Metrics(ctx)
		fatalIf(err)
		printJSON(m)
	default:
		usage()
	}
}

func submit(ctx context.Context, c *service.Client, args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		backend  = fs.String("backend", service.BackendSim, "sim | testbed | null")
		priority = fs.Int("priority", 0, "queue priority (higher runs first)")
		pair     = fs.String("pair", "", "server pair the job occupies (jobs sharing a pair serialize)")
		seed     = fs.Int64("seed", 1, "job seed (identical sim specs share a cache entry)")
		deadline = fs.Duration("deadline", 0, "per-attempt deadline (0 = server default)")
		attempts = fs.Int("attempts", 0, "max attempts (0 = server default)")
		app      = fs.String("app", "", "application trace (default per backend)")
		duration = fs.Duration("duration", 0, "replay duration (0 = backend default)")
		batch    = fs.Int("batch", 1, "submit N copies of the spec (seeds incrementing from -seed) in one round-trip")
		wait     = fs.Bool("wait", false, "poll until the job is terminal (single submissions only)")
	)
	fs.Parse(args) // ExitOnError: Parse never returns an error
	if *batch < 1 {
		fatalIf(fmt.Errorf("-batch must be at least 1, got %d", *batch))
	}

	makeSpec := func(seed int64) service.Spec {
		spec := service.Spec{
			Backend:     *backend,
			Priority:    *priority,
			ServerPair:  *pair,
			Seed:        seed,
			Deadline:    *deadline,
			MaxAttempts: *attempts,
		}
		switch *backend {
		case service.BackendSim:
			spec.Sim = &service.SimJob{App: *app, Duration: *duration}
		case service.BackendTestbed:
			spec.Testbed = &service.TestbedJob{App: *app, Duration: *duration}
		}
		return spec
	}

	if *batch > 1 {
		specs := make([]service.Spec, *batch)
		for i := range specs {
			specs[i] = makeSpec(*seed + int64(i))
		}
		jobs, err := c.SubmitBatch(ctx, specs)
		fatalIf(err)
		for _, job := range jobs {
			fmt.Println(job.ID)
		}
		return
	}

	job, err := c.Submit(ctx, makeSpec(*seed))
	fatalIf(err)
	fmt.Println(job.ID)
	if !*wait {
		return
	}
	job, err = c.Await(ctx, job.ID, 250*time.Millisecond)
	fatalIf(err)
	printJSON(job)
	exitForState(job)
}

func exitForState(job service.Job) {
	if job.State != service.StateDone {
		os.Exit(1)
	}
}

func needID(args []string) {
	if len(args) < 2 {
		usage()
	}
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(v) // stdout write failures have no recovery path here
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: wehey-submit [-server URL] {submit|get|status|wait|cancel|list|metrics} ...")
	os.Exit(2)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "wehey-submit: %v\n", err)
		os.Exit(1)
	}
}
