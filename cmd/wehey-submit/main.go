// Command wehey-submit is the operator client for wehey-serve.
//
// Usage:
//
//	wehey-submit -server http://127.0.0.1:9400 submit -backend sim -seed 7
//	wehey-submit -server http://127.0.0.1:9400 submit -backend testbed -pair A -wait
//	wehey-submit -server http://127.0.0.1:9400 get j000001
//	wehey-submit -server http://127.0.0.1:9400 wait j000001
//	wehey-submit -server http://127.0.0.1:9400 cancel j000001
//	wehey-submit -server http://127.0.0.1:9400 list
//	wehey-submit -server http://127.0.0.1:9400 metrics
//
// submit prints the assigned job ID on the first line (scripting-friendly);
// with -wait it polls until the job is terminal and exits non-zero unless
// the job is done.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/nal-epfl/wehey/internal/service"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:9400", "wehey-serve base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	c := &service.Client{BaseURL: *server}
	ctx := context.Background()

	switch args[0] {
	case "submit":
		submit(ctx, c, args[1:])
	case "get":
		needID(args)
		job, err := c.Job(ctx, args[1])
		fatalIf(err)
		printJSON(job)
	case "wait":
		needID(args)
		job, err := c.Await(ctx, args[1], 0)
		fatalIf(err)
		printJSON(job)
		exitForState(job)
	case "cancel":
		needID(args)
		job, err := c.Cancel(ctx, args[1])
		fatalIf(err)
		printJSON(job)
	case "list":
		jobs, err := c.Jobs(ctx)
		fatalIf(err)
		printJSON(jobs)
	case "metrics":
		m, err := c.Metrics(ctx)
		fatalIf(err)
		printJSON(m)
	default:
		usage()
	}
}

func submit(ctx context.Context, c *service.Client, args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		backend  = fs.String("backend", service.BackendSim, "sim | testbed")
		priority = fs.Int("priority", 0, "queue priority (higher runs first)")
		pair     = fs.String("pair", "", "server pair the job occupies (jobs sharing a pair serialize)")
		seed     = fs.Int64("seed", 1, "job seed (identical sim specs share a cache entry)")
		deadline = fs.Duration("deadline", 0, "per-attempt deadline (0 = server default)")
		attempts = fs.Int("attempts", 0, "max attempts (0 = server default)")
		app      = fs.String("app", "", "application trace (default per backend)")
		duration = fs.Duration("duration", 0, "replay duration (0 = backend default)")
		wait     = fs.Bool("wait", false, "poll until the job is terminal")
	)
	fs.Parse(args) // ExitOnError: Parse never returns an error

	spec := service.Spec{
		Backend:     *backend,
		Priority:    *priority,
		ServerPair:  *pair,
		Seed:        *seed,
		Deadline:    *deadline,
		MaxAttempts: *attempts,
	}
	switch *backend {
	case service.BackendSim:
		spec.Sim = &service.SimJob{App: *app, Duration: *duration}
	case service.BackendTestbed:
		spec.Testbed = &service.TestbedJob{App: *app, Duration: *duration}
	}
	job, err := c.Submit(ctx, spec)
	fatalIf(err)
	fmt.Println(job.ID)
	if !*wait {
		return
	}
	job, err = c.Await(ctx, job.ID, 250*time.Millisecond)
	fatalIf(err)
	printJSON(job)
	exitForState(job)
}

func exitForState(job service.Job) {
	if job.State != service.StateDone {
		os.Exit(1)
	}
}

func needID(args []string) {
	if len(args) < 2 {
		usage()
	}
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(v) // stdout write failures have no recovery path here
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: wehey-submit [-server URL] {submit|get|wait|cancel|list|metrics} ...")
	os.Exit(2)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "wehey-submit: %v\n", err)
		os.Exit(1)
	}
}
