// Command wehey-localize runs a complete WeHeY localization against an
// emulated ISP: WeHe detection on p0, simultaneous replays on p1/p2,
// differentiation confirmation, and common-bottleneck detection.
//
// Usage:
//
//	wehey-localize -isp ISP1                 # per-client throttling
//	wehey-localize -isp ISP5                 # conditional throttling (usually fails)
//	wehey-localize -collective               # collective throttling (loss-trend path)
//	wehey-localize -isp ISP3 -duration 30s -seed 7
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/nal-epfl/wehey"
	"github.com/nal-epfl/wehey/internal/isp"
	"github.com/nal-epfl/wehey/internal/wehe"
)

func main() {
	var (
		ispName    = flag.String("isp", "ISP1", "ISP profile (ISP1..ISP5)")
		collective = flag.Bool("collective", false, "collective per-service throttling instead of per-client")
		tb         = flag.Bool("testbed", false, "replay over real UDP sockets through a loopback middlebox")
		duration   = flag.Duration("duration", 20*time.Second, "replay duration")
		seed       = flag.Int64("seed", 1, "random seed")
		verbose    = flag.Bool("v", false, "print algorithm details")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	history := wehe.SynthHistory(rng, wehe.SynthHistorySpec{
		Clients: 15, TestsPerClient: 9, Spread: 0.15,
	})
	localizer := &wehey.Localizer{Rand: rng, History: history}
	tdiff := localizer.TDiff("", "netflix", "carrier-1")

	var session wehey.ReplaySession
	if *tb {
		dur := *duration
		if dur > 8*time.Second {
			dur = 5 * time.Second // real wall-clock time; keep it short
		}
		fmt.Printf("scenario: loopback testbed over real UDP sockets (%v replays)\n", dur)
		ts, err := wehey.NewTestbedSession(wehey.TestbedConfig{Duration: dur, Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		session = ts
	} else if *collective {
		fmt.Println("scenario: collective per-service throttling (shared bottleneck)")
		session = wehey.NewCollectiveSimSession(rng, wehey.CollectiveConfig{Duration: *duration})
	} else {
		profile, ok := findProfile(*ispName)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown ISP %q; have ISP1..ISP5\n", *ispName)
			os.Exit(2)
		}
		fmt.Printf("scenario: %s (plan rate %.1f Mbit/s, RTT %v)\n",
			profile.Name, profile.PlanRate/1e6, profile.RTT)
		session = wehey.NewSimSession(rng, profile, *duration)
	}

	verdict, err := localizer.Localize(session, tdiff)
	if err != nil {
		fmt.Fprintln(os.Stderr, "localization failed:", err)
		os.Exit(1)
	}

	fmt.Println()
	fmt.Println("WeHe detection on p0:      ", verdict.WeHeDetected)
	fmt.Println("confirmed on both paths:   ", verdict.Confirmed)
	fmt.Println("common-bottleneck evidence:", verdict.Evidence)
	fmt.Println()
	fmt.Println("verdict:", verdict)

	if *verbose {
		if tc := verdict.Detail.Throughput; tc != nil {
			fmt.Printf("\nthroughput comparison: p = %.3g (common bottleneck: %v)\n", tc.P, tc.CommonBottleneck)
		}
		if lt := verdict.Detail.LossTrend; lt != nil {
			fmt.Printf("\nloss-trend correlation: %d/%d interval sizes correlated\n", lt.Correlations, lt.Sizes)
			for _, v := range lt.PerSize {
				fmt.Printf("  σ=%-8v intervals=%-4d ρ=%+.3f p=%.4f correlated=%v\n",
					v.Sigma, v.Intervals, v.Rho, v.P, v.Correlated)
			}
		}
	}
	if !verdict.LocalizedToISP && verdict.WeHeDetected {
		os.Exit(3) // detected but not localized
	}
}

func findProfile(name string) (isp.Profile, bool) {
	for _, p := range isp.FiveISPs() {
		if p.Name == name {
			return p, true
		}
	}
	return isp.Profile{}, false
}
