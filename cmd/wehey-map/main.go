// Command wehey-map is the fleet-level inference client: it plants
// ground-truth campaigns on a wehey-serve, follows their per-session
// verdicts, and renders ISP-scale differentiation maps gated by the
// boolean-tomography identifiability pass (DESIGN.md §16).
//
// Usage:
//
//	wehey-map -server http://127.0.0.1:9400 plant -name gt -throttle 3 -starve 7 -sessions 2048
//	wehey-map -server http://127.0.0.1:9400 watch -name gt -throttle 3 -starve 7 -sessions 2048
//	wehey-map -server http://127.0.0.1:9400 infer -name gt
//	wehey-map -server http://127.0.0.1:9400 score -name gt -throttle 3 -starve 7 -sessions 2048 -check
//	wehey-map score -name gt -throttle 3 -starve 7 -sessions 2048 -journal campaign/journal.wj
//
// plant renders the campaign's session plan as sim-backend job specs and
// submits them in batches (each batch is one server-side journal group
// commit), backing off while the admission queue is full. watch streams
// the job feed through the seq-cursor pages and status batches until
// every planned session is terminal, then prints the differentiation
// map. infer is the one-shot form over whatever the server (or a journal
// file, no server needed) already holds. score grades the inferred map
// against the planted ground truth; with -check it exits non-zero unless
// the top-ranked ISP is a planted one at the required posterior — the CI
// smoke test's assertion.
//
// The map and score are JSON on stdout; progress counters go to stderr.
// infer and score must be given the same campaign flags as the plant:
// the identifiability pass and the ground truth are reconstructed from
// them, not stored server-side.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/nal-epfl/wehey/internal/clock"
	"github.com/nal-epfl/wehey/internal/experiments"
	"github.com/nal-epfl/wehey/internal/fleet"
	"github.com/nal-epfl/wehey/internal/service"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:9400", "wehey-serve base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	c := &service.Client{BaseURL: *server}
	ctx := context.Background()

	switch args[0] {
	case "plant":
		plant(ctx, c, args[1:])
	case "watch":
		watch(ctx, c, args[1:])
	case "infer":
		infer(ctx, c, args[1:])
	case "score":
		score(ctx, c, args[1:])
	default:
		usage()
	}
}

// campaignFlags registers the shared campaign-spec flags on fs and
// returns a closure that builds the (filled) campaign after parsing.
// Zero values defer to the spec defaults (12 ISPs, 8 servers, ...).
func campaignFlags(fs *flag.FlagSet) func() fleet.Campaign {
	var (
		name     = fs.String("name", "fleet", "campaign name (the fleet attribution key on its jobs)")
		isps     = fs.Int("isps", 0, "candidate access ISPs (0 = default)")
		servers  = fs.Int("servers", 0, "replay servers (0 = default)")
		sessions = fs.Int("sessions", 0, "sessions to plan (0 = default)")
		throttle = fs.String("throttle", "", "comma-separated ISP indices with planted throttling")
		starve   = fs.String("starve", "", "comma-separated ISP indices excluded from the plan (path-starved)")
		app      = fs.String("app", "", "application trace the sessions replay (default per spec)")
		duration = fs.Duration("duration", 0, "per-session replay duration (0 = default)")
		seedPool = fs.Int("seed-pool", 0, "distinct seeds per placement; sessions share sims beyond it (0 = default)")
		seed     = fs.Int64("seed", 0, "campaign seed")
	)
	return func() fleet.Campaign {
		return fleet.NewCampaign(*name, experiments.FleetCampaignSpec{
			ISPs:          *isps,
			Servers:       *servers,
			ThrottledISPs: parseISPList("throttle", *throttle),
			StarvedISPs:   parseISPList("starve", *starve),
			Sessions:      *sessions,
			App:           *app,
			Duration:      *duration,
			SeedPool:      *seedPool,
			Seed:          *seed,
		})
	}
}

func plant(ctx context.Context, c *service.Client, args []string) {
	fs := flag.NewFlagSet("plant", flag.ExitOnError)
	campaign := campaignFlags(fs)
	batch := fs.Int("batch", 256, "specs per submit round-trip (one journal group commit each)")
	retry := fs.Duration("retry", 200*time.Millisecond, "backoff while the admission queue is full")
	dryRun := fs.Bool("dry-run", false, "print the job specs instead of submitting them")
	fs.Parse(args) // ExitOnError: Parse never returns an error
	if *batch < 1 {
		fatalIf(fmt.Errorf("-batch must be at least 1, got %d", *batch))
	}

	camp := campaign()
	specs := camp.JobSpecs()
	if *dryRun {
		printJSON(specs)
		return
	}

	first, last := "", ""
	for len(specs) > 0 {
		n := len(specs)
		if n > *batch {
			n = *batch
		}
		jobs, err := c.SubmitBatch(ctx, specs[:n])
		if err != nil {
			if !queueFull(err) {
				fatalIf(err)
			}
			fatalIf(sleep(ctx, *retry))
			continue
		}
		if first == "" {
			first = jobs[0].ID
		}
		last = jobs[len(jobs)-1].ID
		specs = specs[n:]
		fmt.Fprintf(os.Stderr, "wehey-map: submitted %d jobs (through %s)\n", n, last)
	}
	printJSON(map[string]any{
		"campaign":  camp.Name,
		"sessions":  camp.Spec.Sessions,
		"first_job": first,
		"last_job":  last,
	})
}

func watch(ctx context.Context, c *service.Client, args []string) {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	campaign := campaignFlags(fs)
	poll := fs.Duration("poll", 200*time.Millisecond, "idle re-poll interval")
	expect := fs.Int("expect", 0, "sessions to wait for (0 = the campaign plan size, <0 = drain once)")
	noIdent := fs.Bool("no-ident", false, "skip the identifiability gate (score every observed cell)")
	fs.Parse(args)

	camp := campaign()
	total := int64(*expect)
	if *expect == 0 {
		total = int64(len(camp.JobSpecs()))
	}
	f := &fleet.Follower{Client: c, Campaign: camp.Name, Poll: *poll}
	fatalIf(f.Follow(ctx, total))
	printMap(camp, f.Agg, *noIdent)
	printCounters(f.Stats())
}

func infer(ctx context.Context, c *service.Client, args []string) {
	fs := flag.NewFlagSet("infer", flag.ExitOnError)
	campaign := campaignFlags(fs)
	journal := fs.String("journal", "", "infer from this journal file instead of a live server")
	noIdent := fs.Bool("no-ident", false, "skip the identifiability gate (score every observed cell)")
	fs.Parse(args)

	camp := campaign()
	agg, scanned, credited := loadAggregate(ctx, c, camp.Name, *journal)
	printMap(camp, agg, *noIdent)
	printCounters(map[string]int64{"jobs_scanned": scanned, "credited": credited})
}

func score(ctx context.Context, c *service.Client, args []string) {
	fs := flag.NewFlagSet("score", flag.ExitOnError)
	campaign := campaignFlags(fs)
	journal := fs.String("journal", "", "score from this journal file instead of a live server")
	check := fs.Bool("check", false, "exit non-zero unless the top ISP is planted at -min-posterior")
	minPosterior := fs.Float64("min-posterior", 0.9, "posterior the top ISP must reach under -check")
	fs.Parse(args)

	camp := campaign()
	agg, scanned, credited := loadAggregate(ctx, c, camp.Name, *journal)
	m := agg.Snapshot(camp.PathMatrix().Identify())
	s := camp.ScoreMap(m)
	printJSON(s)
	fmt.Fprintf(os.Stderr, "wehey-map: scanned %d jobs, credited %d; %s\n", scanned, credited, s)
	if *check && !(s.TopIsPlanted && s.TopPosterior >= *minPosterior) {
		fmt.Fprintf(os.Stderr, "wehey-map: check failed: top ISP %d (planted=%v) at posterior %.4f < %.4f\n",
			s.TopISP, s.TopIsPlanted, s.TopPosterior, *minPosterior)
		os.Exit(1)
	}
}

// loadAggregate folds a one-shot job dump — a journal file or the
// server's full listing — into a fresh aggregator.
func loadAggregate(ctx context.Context, c *service.Client, campaign, journal string) (agg *fleet.Aggregator, scanned, credited int64) {
	var jobs []service.Job
	var err error
	if journal != "" {
		jobs, err = service.LoadJournalJobs(journal)
	} else {
		jobs, err = c.Jobs(ctx)
	}
	fatalIf(err)
	agg = fleet.NewAggregator()
	return agg, int64(len(jobs)), fleet.FromJobs(agg, campaign, jobs)
}

// printMap renders the aggregator as the campaign's differentiation map
// on stdout, gated by the identifiability pass unless noIdent.
func printMap(camp fleet.Campaign, agg *fleet.Aggregator, noIdent bool) {
	m := agg.Snapshot(nil)
	if !noIdent {
		m = agg.Snapshot(camp.PathMatrix().Identify())
	}
	out, err := m.MarshalIndent()
	fatalIf(err)
	fmt.Println(string(out))
}

// printCounters writes the control-plane counters to stderr (stdout is
// reserved for the map/score JSON).
func printCounters(v any) {
	enc := json.NewEncoder(os.Stderr)
	enc.SetIndent("", "  ")
	enc.Encode(v) // stderr write failures have no recovery path here
}

// parseISPList parses a comma-separated list of non-negative ISP indices.
func parseISPList(name, s string) []int {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			fatalIf(fmt.Errorf("-%s: expected comma-separated non-negative ISP indices, got %q", name, s))
		}
		out = append(out, v)
	}
	return out
}

// queueFull recognizes the admission-control rejection (HTTP 429) in a
// client error, the one submit failure that is worth retrying.
func queueFull(err error) bool {
	return err != nil && strings.Contains(err.Error(), "429")
}

// sleep waits d on the injected clock (interruptible by ctx).
func sleep(ctx context.Context, d time.Duration) error {
	t := clock.System.NewTimer(d)
	select {
	case <-t.C():
		return nil
	case <-ctx.Done():
		t.Stop()
		return ctx.Err()
	}
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(v) // stdout write failures have no recovery path here
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: wehey-map [-server URL] {plant|watch|infer|score} [flags]")
	os.Exit(2)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "wehey-map: %v\n", err)
		os.Exit(1)
	}
}
