// Command wehey-twin answers capacity and impairment questions from the
// analytical queueing twin (internal/twin) — instantly, without running a
// simulation — and validates the twin against simulation ground truth.
//
// Usage:
//
//	wehey-twin tbf -rate 2e6 -burst 12500 -queue 60000 -pkt 1000 -offered 3.6e6 -horizon 10s [-check]
//	wehey-twin capacity -lambda 3 -mean 1 -scv 1 [-workers 4] [-p95 4]
//	wehey-twin validate [-cache-dir .twincache] [-workers N] [-v]
//
// tbf prints the fluid token-bucket prediction (loss rate, mean queue
// delay, time to first drop) for one configuration; -check also runs the
// packet simulator on the same point and prints both. capacity prints the
// M/G/c sojourn statistics for a worker pool, and with -p95 the smallest
// pool meeting that target ("how many workers for X jobs/s at Y p95").
// validate sweeps both models against simulation ground truth across the
// standard grid and exits 1 on any tolerance violation; with a cache dir,
// warm reruns answer from disk without resimulating.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/nal-epfl/wehey/internal/twin"
	"github.com/nal-epfl/wehey/internal/twin/validate"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "tbf":
		tbfCmd(os.Args[2:])
	case "capacity":
		capacityCmd(os.Args[2:])
	case "validate":
		validateCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  wehey-twin tbf -rate R -burst B -queue Q -pkt P -offered A -horizon D [-check]
  wehey-twin capacity -lambda L -mean M [-scv C] [-workers W] [-p95 T]
  wehey-twin validate [-cache-dir DIR] [-workers N] [-v]`)
	os.Exit(2)
}

func tbfCmd(args []string) {
	fs := flag.NewFlagSet("tbf", flag.ExitOnError)
	rate := fs.Float64("rate", 2e6, "token rate in bits/s (0 = blackhole past the burst)")
	burst := fs.Int("burst", 12500, "bucket size in bytes")
	queue := fs.Int("queue", 0, "queue limit in bytes (0 = pure policer)")
	pkt := fs.Int("pkt", 1000, "packet size in bytes")
	offered := fs.Float64("offered", 3e6, "offered load in bits/s")
	horizon := fs.Duration("horizon", 10*time.Second, "observation window")
	check := fs.Bool("check", false, "also run the packet simulator on this point")
	fs.Parse(args) // ExitOnError flag sets cannot return an error

	params := twin.TBFParams{
		Rate: *rate, Burst: *burst, QueueLimit: *queue,
		PacketSize: *pkt, Offered: *offered, Horizon: *horizon,
	}
	pred := twin.PredictTBF(params)
	fmt.Printf("model: loss %.4f  mean queue delay %v", pred.LossRate, pred.MeanQueueDelay.Round(time.Microsecond))
	if pred.Drops {
		fmt.Printf("  first drop %v", pred.FirstDrop.Round(time.Microsecond))
	} else {
		fmt.Printf("  no drops")
	}
	fmt.Println()
	if *check {
		meas := validate.RunTBFPoint(params, validate.CBR, 1)
		fmt.Printf("sim:   loss %.4f  mean queue delay %v", meas.LossRate, meas.MeanQueueDelay.Round(time.Microsecond))
		if meas.Drops {
			fmt.Printf("  first drop %v", meas.FirstDrop.Round(time.Microsecond))
		} else {
			fmt.Printf("  no drops")
		}
		fmt.Println()
	}
}

func capacityCmd(args []string) {
	fs := flag.NewFlagSet("capacity", flag.ExitOnError)
	lambda := fs.Float64("lambda", 1, "arrival rate in jobs/s")
	mean := fs.Float64("mean", 1, "mean service time in seconds")
	scv := fs.Float64("scv", 1, "service-time squared coefficient of variation")
	workers := fs.Int("workers", 4, "worker pool size to evaluate")
	p95 := fs.Float64("p95", 0, "p95 sojourn target in seconds (0 = no sizing question)")
	fs.Parse(args) // ExitOnError flag sets cannot return an error

	m := twin.MGc{Lambda: *lambda, Servers: *workers, MeanService: *mean, SCV: *scv}
	fmt.Printf("workers %d at λ=%.3g jobs/s, E[S]=%.3gs, SCV=%.3g: utilization %.3f\n",
		*workers, *lambda, *mean, *scv, m.Utilization())
	if m.Stable() {
		fmt.Printf("  mean sojourn %.4gs  p50 %.4gs  p95 %.4gs  (wait prob %.3f)\n",
			m.MeanSojourn(), m.SojournQuantile(0.50), m.SojournQuantile(0.95), m.WaitProb())
	} else {
		fmt.Println("  UNSTABLE: the queue grows without bound at this load")
	}
	if *p95 > 0 {
		c := twin.MinServers(*lambda, *mean, *scv, 0.95, *p95, 1024)
		if c == 0 {
			fmt.Printf("  p95 ≤ %.3gs: infeasible at any pool size ≤ 1024 (service tail alone exceeds it)\n", *p95)
			os.Exit(1)
		}
		fmt.Printf("  p95 ≤ %.3gs: %d workers suffice\n", *p95, c)
	}
}

func validateCmd(args []string) {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	cacheDir := fs.String("cache-dir", "", "disk cache for simulation ground truth (\"\" = in-memory only)")
	workers := fs.Int("workers", runtime.NumCPU(), "parallel sweep workers")
	verbose := fs.Bool("v", false, "print every point, not just violations")
	fs.Parse(args) // ExitOnError flag sets cannot return an error

	var cache *validate.Cache
	var err error
	if *cacheDir != "" {
		cache, err = validate.NewDiskCache(*cacheDir)
	} else {
		cache = validate.NewCache()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wehey-twin:", err)
		os.Exit(1)
	}

	report := validate.Run(cache, *workers)
	if *verbose || report.ViolationCount() > 0 {
		fmt.Print(report.Render())
	}
	st := cache.Stats()
	fmt.Printf("points %d  cache hits=%d disk-hits=%d misses=%d\n",
		len(report.TBF)+len(report.MG1)+len(report.Hybrid), st.Hits, st.DiskHits, st.Misses)
	if n := report.ViolationCount(); n > 0 {
		fmt.Fprintf(os.Stderr, "wehey-twin: %d tolerance violations\n", n)
		os.Exit(1)
	}
	fmt.Println("twin and simulators agree within tolerance")
}
